//! The persistent LEQA service daemon: newline-delimited JSON over
//! **stdio** or **TCP**, one process-wide [`Session`] shared by every
//! connection.
//!
//! After PRs 2–4 the session, its sharded profile cache and the
//! persistent worker pool all exist — but only for the lifetime of one
//! CLI invocation, so every request pays full process startup. This
//! module keeps the hot path resident: a [`Server`] wraps one `Session`
//! (already `Send + Sync`), accepts any number of client connections,
//! and answers each request line with the **byte-identical** envelope a
//! direct `Session` call would produce. CPU-bound endpoints keep fanning
//! out over [`Pool::global`](leqa::pool::Pool::global) exactly as they
//! do in-process.
//!
//! # Wire protocol (reference: `SERVER.md`)
//!
//! One JSON document per line, UTF-8, `\n`-terminated; one reply line
//! per request line, in order, per connection. Blank lines are ignored.
//!
//! * **Work frames** — any schema-version-1 [`Request`] envelope
//!   (`op`: `estimate`/`sweep`/`zones`/`compare`/`map`), a
//!   [`BatchRequest`] envelope (`op`: `batch`), or a
//!   [`ScenarioSpec`] envelope (`op`: `experiment`). Successful replies
//!   are the plain response envelopes; failures reply with an
//!   [`ErrorFrame`] and the connection survives.
//! * **Control frames** — `{"cmd":"stats"}` ([`StatsResponse`]) and
//!   `{"cmd":"shutdown"}` ([`ShutdownAck`]). Control frames bypass
//!   admission control so operators can always reach a saturated
//!   daemon.
//! * **Binary frame mode** — a TCP connection that sends
//!   `{"cmd":"upgrade","proto":"frame1"}` switches (after the ack line)
//!   to length-prefixed `[u32 len][u32 tag][payload]` frames
//!   ([`crate::frame`]): payloads are the same byte-stable JSON
//!   documents, but requests pipeline and responses complete **out of
//!   order**, matched by tag. NDJSON stays the default and the
//!   golden-test anchor.
//!
//! # Admission control and shutdown
//!
//! [`ServerConfig`] caps concurrent connections (`max_connections`) and
//! concurrently executing work frames (`max_inflight`); over-cap work is
//! refused immediately with an
//! [`ErrorKind::Overloaded`] error frame
//! (exit/error code 9) — clients back off and retry. `{"cmd":"shutdown"}`
//! (or closing a stdio pipe) stops the daemon gracefully: in-flight
//! requests drain, new work is refused, the worker pool quiesces
//! ([`leqa::pool::Pool::drain`]), and [`BoundServer::run`] returns.
//!
//! # Example
//!
//! ```
//! use leqa_api::{Server, Session};
//!
//! # fn main() -> Result<(), leqa_api::LeqaError> {
//! let server = Server::new(Session::builder().build()?);
//! let reply = server
//!     .process_line(r#"{"schema_version":1,"op":"estimate","program":{"bench":"qft_8"}}"#)
//!     .expect("non-blank line gets a reply");
//! assert!(reply.starts_with("{\"schema_version\":1,\"op\":\"estimate\""));
//! # Ok(())
//! # }
//! ```

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::dto::{
    BatchRequest, ControlFrame, ErrorFrame, FrameProto, Request, ShutdownAck, StatsResponse,
    UpgradeAck,
};
use crate::experiment::ScenarioSpec;
use crate::faults::{FaultAction, FaultInjector, FaultPlan, ReadFaultAction};
use crate::frame::{write_frame, FrameDecoder, FRAME_HEADER};
use crate::json::{self, Json};
use crate::{ErrorKind, LeqaError, Session};

/// Default read-poll period, milliseconds: how often a TCP connection
/// thread wakes from a blocked read to check the shutdown flag — bounds
/// drain latency for idle connections. The shard front-end derives its
/// health-probe pacing from the same knob
/// ([`ServerConfig::read_poll_ms`]), so one setting tunes both how fast
/// a daemon drains and how fast a fleet notices a dead replica (see the
/// operations section of `SERVER.md`).
pub const DEFAULT_READ_POLL_MS: u64 = 100;

/// Service limits for a [`Server`]. `0` means unlimited (the default):
/// start permissive, then tune `max_inflight` to roughly 2× your core
/// count and `max_connections` to your client population (see the
/// operations section of `SERVER.md`).
///
/// # Example
///
/// ```
/// use leqa_api::ServerConfig;
///
/// let config = ServerConfig::new().max_connections(64).max_inflight(8);
/// assert_eq!(config.max_connections_cap(), 64);
/// assert_eq!(config.max_inflight_cap(), 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "a config does nothing until passed to Server::with_config"]
pub struct ServerConfig {
    max_connections: u64,
    max_inflight: u64,
    read_poll_ms: u64,
}

impl ServerConfig {
    /// An unlimited config (no connection or inflight cap).
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Caps concurrently open connections (`0` = unlimited). Over-cap
    /// connections are answered with one `overloaded` error frame and
    /// closed.
    pub fn max_connections(mut self, cap: u64) -> Self {
        self.max_connections = cap;
        self
    }

    /// Caps concurrently executing work frames across all connections
    /// (`0` = unlimited). Over-cap work frames are refused with an
    /// `overloaded` error frame; the connection survives.
    pub fn max_inflight(mut self, cap: u64) -> Self {
        self.max_inflight = cap;
        self
    }

    /// The connection cap (`0` = unlimited).
    #[must_use]
    pub fn max_connections_cap(&self) -> u64 {
        self.max_connections
    }

    /// The inflight cap (`0` = unlimited).
    #[must_use]
    pub fn max_inflight_cap(&self) -> u64 {
        self.max_inflight
    }

    /// Sets the read-poll period in milliseconds (`0` = the default,
    /// [`DEFAULT_READ_POLL_MS`]): how often blocked TCP reads wake to
    /// check the shutdown flag, and the base period for the shard
    /// front-end's replica health probes. Smaller values drain and
    /// detect faster at the cost of more idle wakeups.
    pub fn read_poll_ms(mut self, ms: u64) -> Self {
        self.read_poll_ms = ms;
        self
    }

    /// The effective read-poll period ([`DEFAULT_READ_POLL_MS`] when
    /// unset).
    #[must_use]
    pub fn read_poll(&self) -> Duration {
        let ms = if self.read_poll_ms == 0 {
            DEFAULT_READ_POLL_MS
        } else {
            self.read_poll_ms
        };
        Duration::from_millis(ms)
    }
}

/// The daemon's atomic counters (snapshot shape: [`StatsResponse`]).
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    active_connections: AtomicU64,
    inflight: AtomicU64,
    estimate: AtomicU64,
    sweep: AtomicU64,
    zones: AtomicU64,
    compare: AtomicU64,
    map: AtomicU64,
    batch: AtomicU64,
    experiment: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_in_flight: AtomicU64,
    ticks: AtomicU64,
}

struct Inner {
    session: Session,
    config: ServerConfig,
    stats: Stats,
    shutdown: AtomicBool,
    /// Set by [`Server::bind`]; `shutdown` pokes it with a loopback
    /// connection so a blocked `accept` wakes and observes the flag.
    wake_addr: Mutex<Option<SocketAddr>>,
    /// Opt-in deterministic fault injection (`leqa serve --chaos`),
    /// applied at the TCP reply-write layer only — `None` in every
    /// production configuration.
    faults: Option<FaultInjector>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// One line classified: what the daemon does with it. Exposed so tests
/// and alternative transports can reuse the exact framing rules.
#[derive(Debug)]
#[non_exhaustive]
pub enum Frame {
    /// An operator control line (`{"cmd":…}`).
    Control(ControlFrame),
    /// A single endpoint request envelope.
    Single(Request),
    /// A batch envelope (`op": "batch"`).
    Batch(BatchRequest),
    /// A declarative experiment envelope (`op": "experiment"`).
    Experiment(Box<ScenarioSpec>),
}

impl Frame {
    /// Classifies one non-blank protocol line.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] for unparseable documents, unknown `cmd`s or
    /// `op`s, schema-version mismatches and shape errors (the per-frame
    /// decoders' errors pass through).
    pub fn parse(line: &str) -> Result<Frame, LeqaError> {
        let doc = json::parse(line).map_err(LeqaError::from)?;
        Frame::from_doc(&doc)
    }

    /// Classifies an already-parsed document (shared with the engine's
    /// one-parse path, which also peeks the request deadline).
    fn from_doc(doc: &Json) -> Result<Frame, LeqaError> {
        if doc.get("cmd").is_some() {
            return ControlFrame::from_json(doc).map(Frame::Control);
        }
        match doc.get("op").and_then(Json::as_str) {
            Some("batch") => BatchRequest::from_json(doc).map(Frame::Batch),
            Some("experiment") => {
                ScenarioSpec::from_json(doc).map(|spec| Frame::Experiment(Box::new(spec)))
            }
            _ => Request::from_json(doc).map(Frame::Single),
        }
    }
}

/// Parses one line and peeks the optional per-request `timeout_ms`
/// budget from the envelope (any work frame may carry it; it is not part
/// of any endpoint's schema, so direct [`Session`] calls never see it).
fn classify_line(line: &str) -> Result<(Frame, Option<u64>), LeqaError> {
    let doc = json::parse(line).map_err(LeqaError::from)?;
    let timeout_ms = match doc.get("timeout_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            LeqaError::new(
                ErrorKind::Json,
                "`timeout_ms` must be a non-negative integer (milliseconds)",
            )
        })?),
    };
    Ok((Frame::from_doc(&doc)?, timeout_ms))
}

/// Decrements the inflight gauge when a work frame finishes (also on
/// panic, so a poisoned request cannot leak permits). Owns a `Server`
/// handle instead of a borrow so pipelined frame jobs can carry their
/// permit into the `'static` worker-pool closure.
struct InflightPermit {
    server: Server,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.server
            .inner
            .stats
            .inflight
            .fetch_sub(1, Ordering::AcqRel);
    }
}

/// What a chaotic reply write decided about the connection's future.
enum ChaosOutcome {
    /// The connection keeps serving.
    Continue,
    /// The injector consumed the reply (drop / torn write / replica
    /// kill): close the connection now.
    CloseConnection,
}

/// What a chaotic *request read* decided about the inbound line.
enum ReadChaosOutcome {
    /// Hand the (possibly garbled-but-decodable) line to the engine.
    Proceed,
    /// The request was lost mid-read: close without replying, exactly as
    /// a peer crash would look.
    CloseSilently,
    /// The damage is detectable at the framing layer: write this reply,
    /// then close (the byte stream can no longer be framed).
    ReplyAndClose(String),
}

/// Flips the high bit of `bytes[at % len]`. On the ASCII JSON this
/// protocol emits, a high-bit flip yields an invalid UTF-8 sequence, so
/// the corruption is always *detectable* by the client (it models line
/// noise a checksum would catch, not a silent digit swap no transport
/// could recover from). Steers away from producing `\n` so a corrupted
/// NDJSON reply stays one garbled line.
fn flip_byte(bytes: &mut [u8], at: usize) {
    if bytes.is_empty() {
        return;
    }
    let i = at % bytes.len();
    bytes[i] ^= 0x80;
    if bytes[i] == b'\n' {
        bytes[i] ^= 0x01;
    }
}

/// Decrements the active-connection gauge when a connection closes.
struct ConnectionGuard<'a> {
    active: &'a AtomicU64,
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The persistent service daemon: one shared [`Session`] behind a
/// line-oriented protocol (see the [module docs](self) and `SERVER.md`).
///
/// `Server` is cheaply cloneable (an `Arc` handle); clones share the
/// session, counters, limits and shutdown flag — clone it into however
/// many transport threads you run.
#[derive(Debug, Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Wraps a session with unlimited service limits.
    #[must_use]
    pub fn new(session: Session) -> Server {
        Server::with_config(session, ServerConfig::default())
    }

    /// Wraps a session with explicit service limits.
    #[must_use]
    pub fn with_config(session: Session, config: ServerConfig) -> Server {
        Server {
            inner: Arc::new(Inner {
                session,
                config,
                stats: Stats::default(),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
                faults: None,
            }),
        }
    }

    /// Wraps a session with explicit limits **and** a deterministic
    /// fault-injection plan (`leqa serve --chaos SPEC`): replies on the
    /// TCP transports are delayed, dropped, torn, corrupted or traded
    /// for a whole-replica kill exactly as the seeded plan dictates (see
    /// [`crate::faults`]). The engine underneath still computes correct
    /// replies — chaos lives purely at the write layer — so a retrying
    /// client must converge on byte-identical answers.
    #[must_use]
    pub fn with_chaos(session: Session, config: ServerConfig, plan: FaultPlan) -> Server {
        Server {
            inner: Arc::new(Inner {
                session,
                config,
                stats: Stats::default(),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
                faults: Some(FaultInjector::new(plan)),
            }),
        }
    }

    /// The fault injector, when this server was built with
    /// [`with_chaos`](Self::with_chaos).
    #[must_use]
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.inner.faults.as_ref()
    }

    /// The shared session (e.g. to pre-warm the program cache before
    /// accepting traffic).
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.inner.session
    }

    /// The service limits this daemon enforces.
    pub fn config(&self) -> ServerConfig {
        self.inner.config
    }

    /// Whether shutdown was requested (by a `{"cmd":"shutdown"}` line or
    /// [`shutdown`](Server::shutdown)). Once set it never clears.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Requests graceful shutdown: new work frames are refused with an
    /// `overloaded` error, open connections close after their current
    /// request, and a blocked TCP accept loop is woken so
    /// [`BoundServer::run`] can drain and return. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let wake = *self.inner.wake_addr.lock().expect("no poisoning");
        if let Some(addr) = wake {
            // Wake a blocked `accept`; the loop re-checks the flag before
            // serving whatever it accepted.
            let _ = TcpStream::connect_timeout(&addr, self.inner.config.read_poll());
        }
    }

    /// A consistent-enough snapshot of the daemon's counters (each field
    /// is individually exact; fields are read independently).
    #[must_use]
    pub fn stats(&self) -> StatsResponse {
        let s = &self.inner.stats;
        let store = self.inner.session.store_stats();
        StatsResponse {
            connections: s.connections.load(Ordering::Relaxed),
            active_connections: s.active_connections.load(Ordering::Relaxed),
            inflight: s.inflight.load(Ordering::Relaxed),
            estimate: s.estimate.load(Ordering::Relaxed),
            sweep: s.sweep.load(Ordering::Relaxed),
            zones: s.zones.load(Ordering::Relaxed),
            compare: s.compare.load(Ordering::Relaxed),
            map: s.map.load(Ordering::Relaxed),
            batch: s.batch.load(Ordering::Relaxed),
            experiment: s.experiment.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            bytes_in: s.bytes_in.load(Ordering::Relaxed),
            bytes_out: s.bytes_out.load(Ordering::Relaxed),
            frames_in_flight: s.frames_in_flight.load(Ordering::Relaxed),
            store_hits: store.store_hits,
            store_misses: store.store_misses,
            replicas_restarted: 0,
            cache: self.inner.session.cache_stats(),
            uptime_ticks: s.ticks.load(Ordering::Relaxed),
        }
    }

    /// Processes one protocol line and returns the reply line (no
    /// trailing newline), or `None` for a blank line. This is the whole
    /// per-line engine — both transports and the tests drive it.
    ///
    /// Successful work frames reply with envelopes **byte-identical** to
    /// the corresponding direct [`Session`] call; failures reply with an
    /// [`ErrorFrame`].
    #[must_use = "the reply line must be written back to the client"]
    pub fn process_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let arrived = Instant::now();
        self.inner.stats.ticks.fetch_add(1, Ordering::Relaxed);
        let (frame, timeout_ms) = match classify_line(line) {
            Ok(classified) => classified,
            Err(e) => return Some(self.error_reply(e)),
        };
        Some(match frame {
            Frame::Control(ControlFrame::Stats) => self.stats().to_json().encode(),
            Frame::Control(ControlFrame::Shutdown) => {
                let ack = ShutdownAck.to_json().encode();
                self.shutdown();
                ack
            }
            // The TCP transport intercepts upgrade lines before they
            // reach the engine; seeing one here means the transport
            // cannot switch framing (stdio, in-memory).
            Frame::Control(ControlFrame::Upgrade(_)) => self.error_reply(LeqaError::new(
                ErrorKind::Json,
                "`upgrade` is only available on the TCP transport",
            )),
            work => match self.admit() {
                Ok(permit) => self.execute_deadlined(work, permit, timeout_ms, arrived),
                Err(e) => self.overloaded_reply(e),
            },
        })
    }

    /// Executes one admitted work frame under an optional `timeout_ms`
    /// budget measured from `arrived` (when the line was read). The
    /// budget is checked before execution (a request that aged out in a
    /// queue is not run at all — `timeout_ms:0` deterministically takes
    /// this path) and again after, so a reply that would arrive past the
    /// client's deadline is replaced by a
    /// [`ErrorKind::DeadlineExceeded`] frame instead of wasting its
    /// wire bytes.
    fn execute_deadlined(
        &self,
        frame: Frame,
        permit: InflightPermit,
        timeout_ms: Option<u64>,
        arrived: Instant,
    ) -> String {
        let Some(budget_ms) = timeout_ms else {
            return self.execute_work(frame, permit);
        };
        let budget = Duration::from_millis(budget_ms);
        if arrived.elapsed() >= budget {
            drop(permit);
            return self.deadline_reply(budget_ms);
        }
        let reply = self.execute_work(frame, permit);
        if arrived.elapsed() >= budget {
            return self.deadline_reply(budget_ms);
        }
        reply
    }

    fn deadline_reply(&self, budget_ms: u64) -> String {
        self.error_reply(LeqaError::new(
            ErrorKind::DeadlineExceeded,
            format!("request deadline of {budget_ms} ms elapsed before a reply"),
        ))
    }

    /// Executes one already-admitted work frame, holding `permit` for
    /// the duration. Shared by the NDJSON line engine and the pipelined
    /// frame dispatcher, so both transports produce byte-identical
    /// replies through one code path.
    fn execute_work(&self, frame: Frame, permit: InflightPermit) -> String {
        let reply = match frame {
            Frame::Single(req) => {
                self.count_endpoint(&req);
                match self.inner.session.execute(&req) {
                    Ok(resp) => resp.to_json().encode(),
                    Err(e) => self.error_reply(e),
                }
            }
            Frame::Batch(batch) => {
                self.inner.stats.batch.fetch_add(1, Ordering::Relaxed);
                self.inner.session.batch(&batch.requests).to_json().encode()
            }
            Frame::Experiment(spec) => {
                self.inner.stats.experiment.fetch_add(1, Ordering::Relaxed);
                match self.inner.session.batch_experiment(&spec) {
                    Ok(resp) => resp.to_json().encode(),
                    Err(e) => self.error_reply(e),
                }
            }
            Frame::Control(_) => self.error_reply(LeqaError::internal(
                "control frame routed to the work executor",
            )),
        };
        drop(permit);
        reply
    }

    /// Serves one already-open connection: read lines, write replies,
    /// until EOF or shutdown. Used directly for stdio and in-memory
    /// transports; TCP connections run the poll-aware variant so idle
    /// reads cannot stall a drain.
    ///
    /// A connection blocked inside `read_line` observes shutdown only
    /// when its next line (or EOF) arrives — a generic `BufRead` cannot
    /// be polled. Custom multi-connection transports that need bounded
    /// drain latency should close their readers on shutdown (the stdio
    /// supervisor's pipe close) or use the TCP transport
    /// ([`bind`](Self::bind)), whose connections poll the flag
    /// internally.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the underlying reader or writer fails. A
    /// non-UTF-8 byte stream is not an error: it is answered with one
    /// `json`-kind error frame and the connection closes (framing rule
    /// 4 of `SERVER.md`).
    pub fn serve_connection(
        &self,
        reader: &mut dyn BufRead,
        writer: &mut dyn Write,
    ) -> Result<(), LeqaError> {
        let _guard = self.open_connection();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF: the client hung up.
                Ok(n) => {
                    self.inner
                        .stats
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    let reply = self
                        .error_reply(LeqaError::new(ErrorKind::Json, "frame is not valid UTF-8"));
                    writer
                        .write_all(reply.as_bytes())
                        .map_err(LeqaError::from)?;
                    writer.write_all(b"\n").map_err(LeqaError::from)?;
                    writer.flush().map_err(LeqaError::from)?;
                    return Ok(());
                }
                Err(e) => return Err(LeqaError::from(e)),
            }
            self.write_reply(writer, &line).map_err(LeqaError::from)?;
            if self.is_shutting_down() {
                return Ok(());
            }
        }
    }

    /// Serves the stdio transport (`leqa serve --stdio`): one connection
    /// over the process's stdin/stdout, until EOF or shutdown. The
    /// worker pool is drained before returning.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when stdin or stdout fails.
    pub fn serve_stdio(&self) -> Result<(), LeqaError> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let result = self.serve_connection(&mut stdin.lock(), &mut stdout.lock());
        leqa::pool::Pool::global().drain();
        result
    }

    /// Binds the TCP transport. The returned [`BoundServer`] reports the
    /// actual local address (bind port `0` to let the OS pick) and
    /// serves on [`run`](BoundServer::run).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the address cannot be bound.
    ///
    /// # Example
    ///
    /// ```
    /// use leqa_api::{Server, Session};
    ///
    /// # fn main() -> Result<(), leqa_api::LeqaError> {
    /// let server = Server::new(Session::builder().build()?);
    /// let bound = server.bind("127.0.0.1:0")?;
    /// assert_ne!(bound.local_addr().port(), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn bind(&self, addr: &str) -> Result<BoundServer, LeqaError> {
        let listener = TcpListener::bind(addr)
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("binding `{addr}`")))?;
        let local = listener.local_addr().map_err(LeqaError::from)?;
        *self.inner.wake_addr.lock().expect("no poisoning") = Some(local);
        Ok(BoundServer {
            server: self.clone(),
            listener,
            local,
        })
    }

    // ── Internals ────────────────────────────────────────────────────────

    fn open_connection(&self) -> ConnectionGuard<'_> {
        self.inner.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .active_connections
            .fetch_add(1, Ordering::AcqRel);
        ConnectionGuard {
            active: &self.inner.stats.active_connections,
        }
    }

    /// Processes `line` and writes the reply (if any), flushing so
    /// clients see it promptly.
    fn write_reply(&self, writer: &mut dyn Write, line: &str) -> std::io::Result<()> {
        if let Some(reply) = self.process_line(line) {
            self.write_line(writer, &reply)?;
        }
        Ok(())
    }

    /// Writes one NDJSON reply line through the fault injector: without
    /// one this is exactly [`write_line`](Self::write_line); with one,
    /// the injector's per-event decision may delay the write, swallow
    /// the reply and close the connection, write a torn prefix, flip one
    /// payload byte, or trade the reply for a whole-replica kill.
    fn write_chaotic_line(
        &self,
        writer: &mut dyn Write,
        reply: &str,
    ) -> std::io::Result<ChaosOutcome> {
        let Some(injector) = &self.inner.faults else {
            self.write_line(writer, reply)?;
            return Ok(ChaosOutcome::Continue);
        };
        let decision = injector.next_decision();
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.action {
            FaultAction::Deliver => {
                self.write_line(writer, reply)?;
                Ok(ChaosOutcome::Continue)
            }
            FaultAction::DropConnection => Ok(ChaosOutcome::CloseConnection),
            FaultAction::KillReplica => {
                self.shutdown();
                Ok(ChaosOutcome::CloseConnection)
            }
            FaultAction::Truncate => {
                // A torn write, as a crash mid-flush would leave: half
                // the line, no newline, then the connection closes.
                let bytes = reply.as_bytes();
                let cut = bytes.len() / 2;
                writer.write_all(&bytes[..cut])?;
                writer.flush()?;
                self.inner
                    .stats
                    .bytes_out
                    .fetch_add(cut as u64, Ordering::Relaxed);
                Ok(ChaosOutcome::CloseConnection)
            }
            FaultAction::FlipByte(at) => {
                let mut bytes = reply.as_bytes().to_vec();
                flip_byte(&mut bytes, at);
                writer.write_all(&bytes)?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                self.inner
                    .stats
                    .bytes_out
                    .fetch_add(bytes.len() as u64 + 1, Ordering::Relaxed);
                Ok(ChaosOutcome::Continue)
            }
        }
    }

    /// Applies the fault injector's request-read decision to one inbound
    /// line, mutating it in place when the damage leaves something to
    /// deliver. Without an injector this is a no-op `Proceed` — the
    /// byte-stable production path.
    fn read_chaotic_line(&self, line: &mut String) -> ReadChaosOutcome {
        let Some(injector) = &self.inner.faults else {
            return ReadChaosOutcome::Proceed;
        };
        match injector.next_read_decision() {
            ReadFaultAction::Deliver => ReadChaosOutcome::Proceed,
            ReadFaultAction::DropRequest => ReadChaosOutcome::CloseSilently,
            ReadFaultAction::Truncate => {
                // A torn read: the engine sees only the prefix that made
                // it; the remainder died with the peer. The torn prefix
                // of a JSON document cannot parse, so the reply (if the
                // prefix is non-blank) is a typed `json` error frame.
                let mut cut = line.len() / 2;
                while !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line.truncate(cut);
                match self.process_line(line) {
                    Some(reply) => ReadChaosOutcome::ReplyAndClose(reply),
                    None => ReadChaosOutcome::CloseSilently,
                }
            }
            ReadFaultAction::FlipByte(at) => {
                let mut bytes = line.clone().into_bytes();
                flip_byte(&mut bytes, at);
                match String::from_utf8(bytes) {
                    // ASCII JSON + high-bit flip ⇒ invalid UTF-8: the
                    // same typed answer the UTF-8 read guard gives.
                    Err(_) => {
                        ReadChaosOutcome::ReplyAndClose(self.error_reply(LeqaError::new(
                            ErrorKind::Json,
                            "frame is not valid UTF-8",
                        )))
                    }
                    // A non-ASCII byte flipped back into ASCII: still a
                    // garbled line, deliver it and let the engine answer.
                    Ok(garbled) => {
                        *line = garbled;
                        ReadChaosOutcome::Proceed
                    }
                }
            }
        }
    }

    /// Writes one reply line (with newline + flush), counting the bytes.
    fn write_line(&self, writer: &mut dyn Write, reply: &str) -> std::io::Result<()> {
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        self.inner
            .stats
            .bytes_out
            .fetch_add(reply.len() as u64 + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Admission control for one work frame: refused while draining or
    /// at the inflight cap; otherwise the returned permit holds one
    /// inflight slot until dropped.
    fn admit(&self) -> Result<InflightPermit, LeqaError> {
        if self.is_shutting_down() {
            return Err(LeqaError::new(
                ErrorKind::Overloaded,
                "server is draining for shutdown; no new work accepted",
            ));
        }
        let inflight = &self.inner.stats.inflight;
        let cap = self.inner.config.max_inflight;
        if cap > 0 {
            let admitted = inflight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < cap).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                return Err(LeqaError::new(
                    ErrorKind::Overloaded,
                    format!("server at capacity ({cap} requests in flight); retry later"),
                ));
            }
        } else {
            inflight.fetch_add(1, Ordering::AcqRel);
        }
        Ok(InflightPermit {
            server: self.clone(),
        })
    }

    fn count_endpoint(&self, req: &Request) {
        let counter = match req {
            Request::Estimate(_) => &self.inner.stats.estimate,
            Request::Sweep(_) => &self.inner.stats.sweep,
            Request::Zones(_) => &self.inner.stats.zones,
            Request::Compare(_) => &self.inner.stats.compare,
            Request::Map(_) => &self.inner.stats.map,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn error_reply(&self, e: LeqaError) -> String {
        self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        ErrorFrame::new(e).to_json().encode()
    }

    fn overloaded_reply(&self, e: LeqaError) -> String {
        self.inner.stats.overloaded.fetch_add(1, Ordering::Relaxed);
        ErrorFrame::new(e).to_json().encode()
    }

    /// One TCP connection: like [`serve_connection`](Self::serve_connection)
    /// but with a read timeout so a connection idling in `read` observes
    /// the shutdown flag within the configured read-poll period
    /// ([`ServerConfig::read_poll_ms`]). An
    /// `{"cmd":"upgrade","proto":"frame1"}` line switches the connection
    /// to the pipelined binary framing ([`serve_frames`](Self::serve_frames))
    /// after the NDJSON ack.
    fn serve_tcp_connection(&self, stream: TcpStream) -> std::io::Result<()> {
        let _guard = self.open_connection();
        stream.set_read_timeout(Some(self.inner.config.read_poll()))?;
        // Replies are small and flushed per line; without NODELAY,
        // Nagle + delayed-ACK adds tens of ms to every round trip.
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF
                Ok(n) => {
                    self.inner
                        .stats
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    // Read-side chaos strikes the raw inbound bytes,
                    // before the line is interpreted at all (an upgrade
                    // request can be corrupted like any other).
                    match self.read_chaotic_line(&mut line) {
                        ReadChaosOutcome::Proceed => {}
                        ReadChaosOutcome::CloseSilently => return Ok(()),
                        ReadChaosOutcome::ReplyAndClose(reply) => {
                            writer.write_all(reply.as_bytes())?;
                            writer.write_all(b"\n")?;
                            return writer.flush();
                        }
                    }
                    if let Some(proto) = upgrade_request(&line) {
                        self.inner.stats.ticks.fetch_add(1, Ordering::Relaxed);
                        self.write_line(&mut writer, &UpgradeAck { proto }.to_json().encode())?;
                        // Bytes the client optimistically sent after its
                        // upgrade line are sitting in the BufReader; hand
                        // them to the frame decoder.
                        let residual = reader.buffer().to_vec();
                        drop(reader);
                        return self.serve_frames(writer, residual);
                    }
                    let reply = self.process_line(&line);
                    line.clear();
                    if let Some(reply) = reply {
                        match self.write_chaotic_line(&mut writer, &reply)? {
                            ChaosOutcome::Continue => {}
                            ChaosOutcome::CloseConnection => return Ok(()),
                        }
                    }
                    if self.is_shutting_down() {
                        return Ok(());
                    }
                }
                // Timeout mid-wait: any partial bytes stay in `line`;
                // the next read appends the rest of the frame.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.is_shutting_down() {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Not UTF-8: answer with a typed frame, then close
                    // (the byte stream can no longer be framed).
                    let reply = self
                        .error_reply(LeqaError::new(ErrorKind::Json, "frame is not valid UTF-8"));
                    writer.write_all(reply.as_bytes())?;
                    writer.write_all(b"\n")?;
                    return writer.flush();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Serves one upgraded connection in `frame1` mode: a reader loop
    /// (this thread) decodes `[len][tag][payload]` frames and submits
    /// work to [`Pool::global`](leqa::pool::Pool::global) **without
    /// waiting**; a writer thread drains the completion channel and
    /// writes response frames as they finish. One pipelining client can
    /// therefore keep the whole worker pool saturated, and responses
    /// complete out of order — matched to requests by tag.
    ///
    /// `residual` is whatever the NDJSON reader had buffered past the
    /// upgrade line (already read off the socket).
    fn serve_frames(&self, stream: TcpStream, residual: Vec<u8>) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<(u32, String)>();
        let writer_stream = stream.try_clone()?;
        let server = self.clone();
        let writer = std::thread::Builder::new()
            .name("leqa-frame-writer".to_string())
            .spawn(move || {
                let mut w = BufWriter::new(writer_stream);
                // Batch flushes: drain whatever is ready, flush once.
                while let Ok(first) = rx.recv() {
                    let mut pending = vec![first];
                    pending.extend(rx.try_iter());
                    for (tag, payload) in &pending {
                        match server.write_chaotic_frame(&mut w, *tag, payload) {
                            Ok(ChaosOutcome::Continue) => {}
                            Ok(ChaosOutcome::CloseConnection) => {
                                // Chaotic drop/kill/torn write: tear the
                                // socket down so the reader loop ends too.
                                let _ = w.flush();
                                let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
                                return;
                            }
                            Err(_) => return, // client gone: drop the channel
                        }
                    }
                    if w.flush().is_err() {
                        return;
                    }
                }
            })?;

        let mut decoder = FrameDecoder::new();
        self.inner
            .stats
            .bytes_in
            .fetch_add(residual.len() as u64, Ordering::Relaxed);
        decoder.push(&residual);
        let mut reader = stream;
        let mut buf = [0u8; 16 * 1024];
        let mut result = Ok(());
        'conn: loop {
            loop {
                match decoder.next() {
                    Ok(Some((tag, payload))) => self.dispatch_frame(tag, payload, &tx),
                    Ok(None) => break,
                    Err(fe) => {
                        // Framing violation (oversized length): answer on
                        // the offending tag and close — the stream can no
                        // longer be trusted.
                        let reply = self.error_reply(fe.error);
                        let _ = tx.send((fe.tag.unwrap_or(0), reply));
                        break 'conn;
                    }
                }
            }
            if self.is_shutting_down() {
                break;
            }
            match reader.read(&mut buf) {
                Ok(0) => {
                    if let Err(fe) = decoder.finish() {
                        let reply = self.error_reply(fe.error);
                        let _ = tx.send((fe.tag.unwrap_or(0), reply));
                    }
                    break;
                }
                Ok(n) => {
                    self.inner
                        .stats
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    decoder.push(&buf[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        // In-flight jobs hold sender clones; the writer exits once the
        // last reply is sent (or the client is gone), so joining it
        // drains this connection's pipeline.
        drop(tx);
        let _ = writer.join();
        result
    }

    /// Frame-mode twin of [`write_chaotic_line`](Self::write_chaotic_line):
    /// one `[len][tag][payload]` reply frame through the fault injector
    /// (byte-counting included); without an injector it is a plain
    /// [`write_frame`].
    fn write_chaotic_frame(
        &self,
        w: &mut BufWriter<TcpStream>,
        tag: u32,
        payload: &str,
    ) -> Result<ChaosOutcome, LeqaError> {
        let deliver = |w: &mut BufWriter<TcpStream>, bytes: &[u8]| -> Result<(), LeqaError> {
            write_frame(w, tag, bytes)?;
            self.inner
                .stats
                .bytes_out
                .fetch_add((bytes.len() + FRAME_HEADER) as u64, Ordering::Relaxed);
            Ok(())
        };
        let Some(injector) = &self.inner.faults else {
            deliver(w, payload.as_bytes())?;
            return Ok(ChaosOutcome::Continue);
        };
        let decision = injector.next_decision();
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.action {
            FaultAction::Deliver => {
                deliver(w, payload.as_bytes())?;
                Ok(ChaosOutcome::Continue)
            }
            FaultAction::DropConnection => Ok(ChaosOutcome::CloseConnection),
            FaultAction::KillReplica => {
                self.shutdown();
                Ok(ChaosOutcome::CloseConnection)
            }
            FaultAction::Truncate => {
                // A torn frame: encode the full [len][tag][payload] then
                // put only half of it on the wire before closing.
                let mut framed = Vec::with_capacity(payload.len() + FRAME_HEADER);
                write_frame(&mut framed, tag, payload.as_bytes())?;
                let cut = framed.len() / 2;
                w.write_all(&framed[..cut]).map_err(LeqaError::from)?;
                w.flush().map_err(LeqaError::from)?;
                self.inner
                    .stats
                    .bytes_out
                    .fetch_add(cut as u64, Ordering::Relaxed);
                Ok(ChaosOutcome::CloseConnection)
            }
            FaultAction::FlipByte(at) => {
                let mut bytes = payload.as_bytes().to_vec();
                flip_byte(&mut bytes, at);
                deliver(w, &bytes)?;
                Ok(ChaosOutcome::Continue)
            }
        }
    }

    /// Routes one decoded frame: control frames answer inline (they
    /// bypass admission, as on the NDJSON channel); work frames are
    /// admitted here — so `overloaded` refusals carry the offending tag
    /// immediately — then executed on the worker pool, completing out of
    /// order through `tx`.
    fn dispatch_frame(&self, tag: u32, payload: Vec<u8>, tx: &mpsc::Sender<(u32, String)>) {
        let arrived = Instant::now();
        self.inner.stats.ticks.fetch_add(1, Ordering::Relaxed);
        let text = match String::from_utf8(payload) {
            Ok(text) => text,
            Err(_) => {
                let reply =
                    self.error_reply(LeqaError::new(ErrorKind::Json, "frame is not valid UTF-8"));
                let _ = tx.send((tag, reply));
                return;
            }
        };
        let (frame, timeout_ms) = match classify_line(text.trim()) {
            Ok(classified) => classified,
            Err(e) => {
                let _ = tx.send((tag, self.error_reply(e)));
                return;
            }
        };
        match frame {
            Frame::Control(ControlFrame::Stats) => {
                let _ = tx.send((tag, self.stats().to_json().encode()));
            }
            Frame::Control(ControlFrame::Shutdown) => {
                let ack = ShutdownAck.to_json().encode();
                self.shutdown();
                let _ = tx.send((tag, ack));
            }
            Frame::Control(ControlFrame::Upgrade(_)) => {
                let reply = self.error_reply(LeqaError::new(
                    ErrorKind::Json,
                    "connection already upgraded to frame1",
                ));
                let _ = tx.send((tag, reply));
            }
            work => {
                let permit = match self.admit() {
                    Ok(permit) => permit,
                    Err(e) => {
                        let _ = tx.send((tag, self.overloaded_reply(e)));
                        return;
                    }
                };
                self.inner
                    .stats
                    .frames_in_flight
                    .fetch_add(1, Ordering::AcqRel);
                let server = self.clone();
                let tx = tx.clone();
                leqa::pool::Pool::global().submit(move || {
                    // Catch panics so a poisoned request can't kill a
                    // pool worker; the permit drops either way.
                    let reply = catch_unwind(AssertUnwindSafe(|| {
                        server.execute_deadlined(work, permit, timeout_ms, arrived)
                    }))
                    .unwrap_or_else(|_| {
                        server.error_reply(LeqaError::internal("request panicked during execution"))
                    });
                    server
                        .inner
                        .stats
                        .frames_in_flight
                        .fetch_sub(1, Ordering::AcqRel);
                    let _ = tx.send((tag, reply));
                });
            }
        }
    }
}

/// Recognizes an `{"cmd":"upgrade",…}` line cheaply: the substring probe
/// keeps the hot NDJSON path from re-parsing every line, the full parse
/// confirms. Malformed upgrade lines return `None` and fall through to
/// the line engine, which answers with a typed error frame.
pub(crate) fn upgrade_request(line: &str) -> Option<FrameProto> {
    let line = line.trim();
    if line.is_empty() || !line.contains("\"upgrade\"") {
        return None;
    }
    match Frame::parse(line) {
        Ok(Frame::Control(ControlFrame::Upgrade(proto))) => Some(proto),
        _ => None,
    }
}

/// A [`Server`] bound to a TCP address, ready to [`run`](Self::run).
#[derive(Debug)]
pub struct BoundServer {
    server: Server,
    listener: TcpListener,
    local: SocketAddr,
}

impl BoundServer {
    /// The actual bound address (resolves port `0` to the OS's pick).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle to the serving daemon (clone it to trigger
    /// [`Server::shutdown`] or poll [`Server::stats`] from the
    /// supervising thread).
    #[must_use]
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Accepts and serves connections until shutdown: each connection
    /// gets its own thread, over-cap connections are refused with one
    /// `overloaded` error frame, and on shutdown the loop stops
    /// accepting, joins every connection thread (draining their
    /// in-flight requests) and quiesces the worker pool
    /// ([`leqa::pool::Pool::drain`]).
    ///
    /// Accept errors never kill the daemon: transient conditions (a
    /// client resetting before `accept`, fd-limit pressure) are
    /// retried, with a read-poll-period backoff for non-transient kinds so
    /// a persistently failing listener cannot busy-spin — the operator
    /// stays in control via `{"cmd":"shutdown"}` on open connections.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when a connection thread cannot be spawned.
    pub fn run(self) -> Result<(), LeqaError> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.server.is_shutting_down() {
                break; // wake-up connection (or a late client): drop it.
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::WouldBlock
                    ) =>
                {
                    continue
                }
                Err(_) => {
                    // EMFILE and friends: back off instead of dying or
                    // spinning; the shutdown check above ends the loop.
                    std::thread::sleep(self.server.inner.config.read_poll());
                    continue;
                }
            };
            handles.retain(|h| !h.is_finished());
            let cap = self.server.inner.config.max_connections;
            if cap > 0 && handles.len() as u64 >= cap {
                let reply = self.server.overloaded_reply(LeqaError::new(
                    ErrorKind::Overloaded,
                    format!("server at capacity ({cap} connections); retry later"),
                ));
                let mut stream = stream;
                let _ = stream.write_all(reply.as_bytes());
                let _ = stream.write_all(b"\n");
                continue;
            }
            let server = self.server.clone();
            let handle = std::thread::Builder::new()
                .name("leqa-serve-conn".to_string())
                .spawn(move || {
                    let _ = server.serve_tcp_connection(stream);
                })
                .map_err(LeqaError::from)?;
            handles.push(handle);
        }
        drop(self.listener); // refuse new connections while draining
        for handle in handles {
            let _ = handle.join();
        }
        leqa::pool::Pool::global().drain();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dto::{EstimateRequest, ProgramSpec};

    fn server() -> Server {
        Server::new(Session::builder().build().expect("default session"))
    }

    fn estimate_line(name: &str) -> String {
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
            .to_json()
            .encode()
    }

    #[test]
    fn blank_lines_are_ignored_without_ticking() {
        let server = server();
        assert!(server.process_line("").is_none());
        assert!(server.process_line("   \t ").is_none());
        assert_eq!(server.stats().uptime_ticks, 0);
    }

    #[test]
    fn frames_classify_by_cmd_and_op() {
        assert!(matches!(
            Frame::parse(r#"{"cmd":"stats"}"#),
            Ok(Frame::Control(ControlFrame::Stats))
        ));
        assert!(matches!(
            Frame::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Frame::Control(ControlFrame::Shutdown))
        ));
        assert!(matches!(
            Frame::parse(&estimate_line("qft_8")),
            Ok(Frame::Single(Request::Estimate(_)))
        ));
        assert!(matches!(
            Frame::parse(r#"{"schema_version":1,"op":"batch","requests":[]}"#),
            Ok(Frame::Batch(_))
        ));
        assert!(matches!(
            Frame::parse(
                r#"{"schema_version":1,"op":"experiment","workloads":["qft_8"],"fabrics":[10]}"#
            ),
            Ok(Frame::Experiment(_))
        ));
        assert!(Frame::parse("not json").is_err());
        assert!(Frame::parse(r#"{"schema_version":1,"op":"nope"}"#).is_err());
    }

    #[test]
    fn work_replies_are_byte_identical_to_direct_session_calls() {
        let server = server();
        let direct = Session::builder().build().unwrap();
        let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
        let reply = server.process_line(&estimate_line("qft_8")).unwrap();
        let expected = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(reply, expected);
        // Second hit: cache-warm on both sides, still byte-identical.
        let reply = server.process_line(&estimate_line("qft_8")).unwrap();
        let expected = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(reply, expected);
    }

    #[test]
    fn malformed_lines_reply_with_error_frames() {
        let server = server();
        let reply = server.process_line("{oops").unwrap();
        let frame =
            ErrorFrame::from_json(&json::parse(&reply).expect("error frame is json")).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Json);
        assert_eq!(server.stats().errors, 1);
        // The engine keeps serving afterwards.
        assert!(server
            .process_line(&estimate_line("qft_8"))
            .unwrap()
            .starts_with("{\"schema_version\":1,\"op\":\"estimate\""));
    }

    #[test]
    fn request_deadlines_expire_deterministically_and_pass_when_generous() {
        let server = server();
        // `timeout_ms: 0` expires before execution ever starts — the
        // deterministic pin of the deadline path.
        let line =
            r#"{"schema_version":1,"op":"estimate","program":{"bench":"qft_8"},"timeout_ms":0}"#;
        let reply = server.process_line(line).unwrap();
        let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::DeadlineExceeded);
        assert!(frame.error.to_string().contains("0 ms"), "{reply}");

        // A generous deadline changes nothing about the reply bytes
        // (both warm, so the cache flag matches).
        let deadlined = r#"{"schema_version":1,"op":"estimate","program":{"bench":"qft_8"},"timeout_ms":60000}"#;
        let _cold = server.process_line(&estimate_line("qft_8")).unwrap();
        let warm = server.process_line(&estimate_line("qft_8")).unwrap();
        assert_eq!(server.process_line(deadlined).unwrap(), warm);

        // A malformed deadline is a JSON-kind usage problem, not a crash.
        let bad =
            r#"{"schema_version":1,"op":"estimate","program":{"bench":"qft_8"},"timeout_ms":-5}"#;
        let reply = server.process_line(bad).unwrap();
        let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Json);
    }

    #[test]
    fn stats_count_endpoints_errors_and_ticks() {
        let server = server();
        let _ = server.process_line(&estimate_line("qft_8"));
        let _ = server.process_line(&estimate_line("qft_8"));
        let _ = server.process_line("{bad");
        let reply = server.process_line(r#"{"cmd":"stats"}"#).unwrap();
        let stats = StatsResponse::from_json(&json::parse(&reply).unwrap()).unwrap();
        assert_eq!(stats.estimate, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.uptime_ticks, 4);
        assert_eq!(stats.cache.loads, 2);
        assert_eq!(stats.cache.cache_hits, 1);
        assert_eq!(stats.inflight, 0, "permits are released");
    }

    #[test]
    fn shutdown_line_acks_then_refuses_new_work() {
        let server = server();
        let ack = server.process_line(r#"{"cmd":"shutdown"}"#).unwrap();
        assert_eq!(ack, ShutdownAck.to_json().encode());
        assert!(server.is_shutting_down());
        let reply = server.process_line(&estimate_line("qft_8")).unwrap();
        let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Overloaded);
        assert_eq!(server.stats().overloaded, 1);
        // Control frames still answer while draining.
        assert!(server.process_line(r#"{"cmd":"stats"}"#).is_some());
    }

    #[test]
    fn serve_connection_stops_at_shutdown_leaving_later_lines_unread() {
        let server = server();
        let script = format!(
            "{}\n{{\"cmd\":\"shutdown\"}}\n{}\n",
            estimate_line("qft_8"),
            estimate_line("qft_16")
        );
        let mut reader = std::io::Cursor::new(script.into_bytes());
        let mut out = Vec::new();
        server.serve_connection(&mut reader, &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "third line never processed: {out}");
        assert!(lines[0].contains("\"op\":\"estimate\""));
        assert!(lines[1].contains("\"op\":\"shutdown\""));
        assert_eq!(server.stats().connections, 1);
        assert_eq!(server.stats().active_connections, 0);
    }

    #[test]
    fn serve_connection_answers_non_utf8_with_an_error_frame_and_closes() {
        let server = server();
        let mut bytes = estimate_line("qft_8").into_bytes();
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xff, 0xfe, b'{', b'}', b'\n']);
        let mut reader = std::io::Cursor::new(bytes);
        let mut out = Vec::new();
        server
            .serve_connection(&mut reader, &mut out)
            .expect("framing rule 4: not an io error");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains("\"op\":\"estimate\""));
        let frame = ErrorFrame::from_json(&json::parse(lines[1]).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Json);
        assert!(frame.error.to_string().contains("UTF-8"));
        assert_eq!(server.stats().active_connections, 0);
    }

    #[test]
    fn inflight_cap_zero_means_unlimited() {
        let server = Server::with_config(
            Session::builder().build().unwrap(),
            ServerConfig::new().max_inflight(0),
        );
        assert!(server
            .process_line(&estimate_line("qft_8"))
            .unwrap()
            .contains("\"op\":\"estimate\""));
        assert_eq!(server.stats().overloaded, 0);
    }
}
