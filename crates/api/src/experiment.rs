//! The declarative experiment engine: one spec in, a design-space study
//! out.
//!
//! The paper's value proposition is answering design-space questions —
//! how does latency move across fabric dimensions, physical parameters
//! and benchmark circuits — without paying a detailed mapping run per
//! point. A [`ScenarioSpec`] declares a cartesian grid over up to five
//! axes:
//!
//! * **workloads** — suite names and parametric specs (`qft_N[_K]`,
//!   `random_Q_G[_S]`; the [`leqa_workloads::circuit_by_name`] grammar),
//! * **fabrics** — explicit square sides and/or `min..max step` ranges
//!   (overlapping entries are deduplicated, first occurrence wins),
//! * **params** — named physical-parameter override variants
//!   (`t_move_us`, `qubit_speed`, `channel_capacity` over the session's
//!   base parameters),
//! * **routers** / **movements** — QSPR routing/movement variants.
//!
//! plus per-axis filters (workload substring, side bounds, a cell-count
//! guard) and a result selector (`full` rows or `latency`-only rows).
//!
//! The [`ExperimentRunner`] expands the grid with the fabric axis
//! innermost, loads each distinct program **once** through the session's
//! sharded profile cache, and executes:
//!
//! * `estimate` mode — one [`sweep_profile_squares`] call per
//!   (workload, params) group rides the sweep engine's convex-census
//!   bisection along the whole fabric axis; every cell is bit-identical
//!   to an independent [`Session::estimate`] call (the engine contract,
//!   pinned by `crates/api/tests/experiment.rs`).
//! * `map` / `compare` modes — the remaining cells fan out over the
//!   persistent worker pool (`parallel` feature), one QSPR run per cell.
//!
//! Results stream as NDJSON rows (one per cell, byte-stable key order)
//! followed by one summary record carrying min/max/argmin latency per
//! workload and the cache-hit delta. `leqa experiment --spec file.json`
//! is the CLI adapter; [`Session::batch_experiment`] is the collected
//! API endpoint.

use std::sync::Arc;

use leqa::sweep::{sweep_profile_squares, SweepPoint};
use leqa::{Estimator, ProgramProfile};
use leqa_fabric::{FabricDims, FabricMap, Micros, PhysicalParams, SplitMix64};
use qspr::{
    Mapper, MapperConfig, MovementModel, PassManager, PlacementStrategy, RouterStrategy,
    SchedulerStrategy,
};

use crate::dto::{
    check_schema_version, field, json_opt_num, movement_from_name, movement_name, opt_f64, opt_u32,
    opt_u64, router_from_name, router_name, scheduler_from_name, scheduler_name, str_field,
    u64_field, ProgramSpec, SCHEMA_VERSION,
};
use crate::error::{ErrorKind, LeqaError};
use crate::json::Json;
use crate::session::{fan_out, CacheStats, ProgramHandle, Session};

/// Hard cap on materialized fabric sides per experiment, enforced by an
/// O(#entries) arithmetic pre-check so even a spec without a
/// `max_cells` guard cannot make `--dry-run` allocate unbounded memory.
/// Far above any meaningful grid (sides are fabric dimensions; real
/// studies use dozens).
pub const MAX_FABRIC_SIDES: u64 = 100_000;

/// The sub-range of `min..=max` (stride `step`, aligned to `min`) that
/// survives the `[min_side, max_side]` filter: `Some((first, hi))` with
/// `first` the smallest aligned side ≥ the filter floor, or `None` when
/// the window is empty. Shared by the arithmetic cell-count pre-check
/// and the expansion loop, so both agree and neither ever walks the
/// unfiltered range.
fn range_window(min: u32, max: u32, step: u32, min_side: u32, max_side: u32) -> Option<(u32, u32)> {
    debug_assert!(step > 0 && min <= max);
    let lo = min.max(min_side);
    let hi = max.min(max_side);
    if lo > hi {
        return None;
    }
    let offset = (u64::from(lo) - u64::from(min)).div_ceil(u64::from(step));
    let first = u64::from(min) + offset * u64::from(step);
    if first > u64::from(hi) {
        None
    } else {
        Some((u32::try_from(first).expect("first <= hi <= u32::MAX"), hi))
    }
}

// ── The spec ─────────────────────────────────────────────────────────────

/// What each cell of the grid runs.
///
/// `#[non_exhaustive]`: future modes (e.g. zones) may be added; match
/// with a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ExperimentMode {
    /// Algorithm 1 per cell (default). The fabric axis runs through the
    /// amortised sweep engine; rows are bit-identical to independent
    /// [`Session::estimate`] calls.
    #[default]
    Estimate,
    /// The detailed QSPR mapper per cell.
    Map,
    /// QSPR mapping *and* the LEQA estimate per cell (Table 2 per cell).
    Compare,
    /// The Monte Carlo percolation-yield study: every cell is expanded
    /// into `densities × trials` seeded QSPR runs on randomly defective
    /// fabrics (see [`MonteCarloSpec`]); the summary reports per-density
    /// routability with a Wilson interval and the interpolated critical
    /// defect density (the percolation knee, after arXiv:1307.2755).
    MonteCarlo,
}

impl ExperimentMode {
    /// The stable wire name (`estimate` / `map` / `compare`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExperimentMode::Estimate => "estimate",
            ExperimentMode::Map => "map",
            ExperimentMode::Compare => "compare",
            ExperimentMode::MonteCarlo => "montecarlo",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "estimate" => ExperimentMode::Estimate,
            "map" => ExperimentMode::Map,
            "compare" => ExperimentMode::Compare,
            "montecarlo" => ExperimentMode::MonteCarlo,
            _ => return None,
        })
    }
}

/// The Monte Carlo axis of a `montecarlo`-mode spec: the defect-density
/// sweep and the trial count per density.
///
/// Each (density, trial) pair of each cell draws an independent
/// [`FabricMap::with_random_defects`] fabric — cells *and* channels are
/// knocked out at the same density — with a per-trial seed derived from
/// `seed` via [`SplitMix64::mix`], so a spec is exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MonteCarloSpec {
    /// Defect densities to sweep (each in `[0, 1]`; order is preserved
    /// in the rows, the summary sorts ascending for the knee scan).
    pub densities: Vec<f64>,
    /// Seeded trials per density (≥ 1).
    pub trials: u32,
    /// Base RNG seed for the whole study.
    pub seed: u64,
}

impl MonteCarloSpec {
    /// A study over the given densities with the given trial count.
    #[must_use]
    pub fn new(densities: impl IntoIterator<Item = f64>, trials: u32, seed: u64) -> Self {
        MonteCarloSpec {
            densities: densities.into_iter().collect(),
            trials,
            seed,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "densities",
                Json::Arr(self.densities.iter().map(|&d| Json::Num(d)).collect()),
            ),
            ("trials", Json::num(self.trials)),
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "montecarlo section";
        let densities = field(value, "densities", what)?
            .as_arr()
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`densities` must be an array"))?
            .iter()
            .map(|d| {
                d.as_f64().ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "montecarlo densities must be numbers")
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(MonteCarloSpec {
            densities,
            trials: u64_field(value, "trials", what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, "montecarlo `trials` too large"))?,
            seed: u64_field(value, "seed", what)?,
        })
    }
}

/// Which fields each NDJSON cell row carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ResultSelect {
    /// Every per-cell quantity the mode produces (default).
    #[default]
    Full,
    /// Only the headline latency (`latency_us`; `actual_us`/`estimated_us`
    /// in compare mode) — compact rows for wide grids.
    Latency,
}

impl ResultSelect {
    /// The stable wire name (`full` / `latency`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ResultSelect::Full => "full",
            ResultSelect::Latency => "latency",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "full" => ResultSelect::Full,
            "latency" => ResultSelect::Latency,
            _ => return None,
        })
    }
}

/// One entry of the fabric axis: a single square side or an inclusive
/// stepped range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEntry {
    /// One square side.
    Side(u32),
    /// `min, min+step, … ≤ max` (inclusive of `max` when the step lands
    /// on it).
    Range {
        /// First side.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
        /// Stride (must be positive).
        step: u32,
    },
}

impl FabricEntry {
    fn to_json(self) -> Json {
        match self {
            FabricEntry::Side(s) => Json::num(s),
            FabricEntry::Range { min, max, step } => Json::obj(vec![
                ("min", Json::num(min)),
                ("max", Json::num(max)),
                ("step", Json::num(step)),
            ]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        if let Some(side) = value.as_u64() {
            let side = u32::try_from(side)
                .map_err(|_| LeqaError::new(ErrorKind::Json, "fabric side out of range for u32"))?;
            return Ok(FabricEntry::Side(side));
        }
        if value.get("min").is_some() {
            let to_u32 = |key: &str| -> Result<u32, LeqaError> {
                u64_field(value, key, "fabric range")?
                    .try_into()
                    .map_err(|_| {
                        LeqaError::new(
                            ErrorKind::Json,
                            format!("fabric range `{key}` out of range"),
                        )
                    })
            };
            return Ok(FabricEntry::Range {
                min: to_u32("min")?,
                max: to_u32("max")?,
                step: to_u32("step")?,
            });
        }
        Err(LeqaError::new(
            ErrorKind::Json,
            "fabric entries must be a side number or a {\"min\",\"max\",\"step\"} range",
        ))
    }
}

/// One named physical-parameter override variant. Fields left `None`
/// keep the session's base value; the variant named `default` with no
/// overrides is the implicit axis when a spec omits `params`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ParamVariant {
    /// Label echoed in every row of this variant (must be unique).
    pub name: String,
    /// Override for `T_move` in microseconds.
    pub t_move_us: Option<f64>,
    /// Override for the qubit speed `v` (ULB edges per microsecond).
    pub qubit_speed: Option<f64>,
    /// Override for the channel capacity `N_c`.
    pub channel_capacity: Option<u32>,
}

impl ParamVariant {
    /// A variant with no overrides (the session's base parameters).
    #[must_use]
    pub fn base(name: impl Into<String>) -> Self {
        ParamVariant {
            name: name.into(),
            t_move_us: None,
            qubit_speed: None,
            channel_capacity: None,
        }
    }

    /// Sets the `T_move` override (microseconds).
    #[must_use]
    pub fn with_t_move_us(mut self, t_move_us: f64) -> Self {
        self.t_move_us = Some(t_move_us);
        self
    }

    /// Sets the qubit-speed override.
    #[must_use]
    pub fn with_qubit_speed(mut self, qubit_speed: f64) -> Self {
        self.qubit_speed = Some(qubit_speed);
        self
    }

    /// Sets the channel-capacity override.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: u32) -> Self {
        self.channel_capacity = Some(capacity);
        self
    }

    /// Applies the overrides to a base parameter set.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Invalid`] when an override violates the parameter
    /// rules (negative/non-finite delay, zero capacity or speed).
    pub fn apply(&self, base: &PhysicalParams) -> Result<PhysicalParams, LeqaError> {
        let mut builder = base.to_builder();
        if let Some(t) = self.t_move_us {
            builder = builder.t_move(Micros::new(t));
        }
        if let Some(v) = self.qubit_speed {
            builder = builder.qubit_speed(v);
        }
        if let Some(c) = self.channel_capacity {
            builder = builder.channel_capacity(c);
        }
        builder
            .build()
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("experiment params variant `{}`", self.name)))
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("t_move_us", json_opt_num(self.t_move_us)),
            ("qubit_speed", json_opt_num(self.qubit_speed)),
            (
                "channel_capacity",
                self.channel_capacity.map(Json::num).unwrap_or(Json::Null),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "params variant";
        Ok(ParamVariant {
            name: str_field(value, "name", what)?,
            t_move_us: opt_f64(value, "t_move_us", what)?,
            qubit_speed: opt_f64(value, "qubit_speed", what)?,
            channel_capacity: opt_u32(value, "channel_capacity", what)?,
        })
    }
}

/// Per-axis filters applied during grid expansion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct AxisFilter {
    /// Keep only workloads whose name contains this substring.
    pub workloads: Option<String>,
    /// Keep only fabric sides `≥ min_side`.
    pub min_side: Option<u32>,
    /// Keep only fabric sides `≤ max_side`.
    pub max_side: Option<u32>,
    /// Refuse to run grids larger than this many cells
    /// ([`ErrorKind::Invalid`]; check with `--dry-run` first).
    pub max_cells: Option<u64>,
}

impl AxisFilter {
    /// Whether no filter is set (the default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self == &AxisFilter::default()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "workloads",
                self.workloads
                    .as_deref()
                    .map(Json::str)
                    .unwrap_or(Json::Null),
            ),
            (
                "min_side",
                self.min_side.map(Json::num).unwrap_or(Json::Null),
            ),
            (
                "max_side",
                self.max_side.map(Json::num).unwrap_or(Json::Null),
            ),
            (
                "max_cells",
                self.max_cells
                    .map(|n| Json::Num(n as f64))
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "filter";
        let workloads = match value.get("workloads") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, "filter `workloads` must be a string")
                    })?
                    .to_string(),
            ),
        };
        Ok(AxisFilter {
            workloads,
            min_side: opt_u32(value, "min_side", what)?,
            max_side: opt_u32(value, "max_side", what)?,
            max_cells: opt_u64(value, "max_cells", what)?,
        })
    }
}

/// A declarative design-space experiment: the cartesian grid over the
/// axes, filters and result selector (see the module docs for semantics
/// and `API.md` for the wire schema).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ScenarioSpec {
    /// Workload axis: names in the [`leqa_workloads::circuit_by_name`]
    /// grammar. Duplicates collapse (first occurrence wins).
    pub workloads: Vec<String>,
    /// Fabric axis: square sides and/or stepped ranges; overlapping
    /// entries collapse (first occurrence wins).
    pub fabrics: Vec<FabricEntry>,
    /// Physical-parameter variants (default: one base variant named
    /// `default`).
    pub params: Vec<ParamVariant>,
    /// Router variants (default: `[xy]`). Affects `map`/`compare` cells;
    /// `estimate` cells echo the label (the estimator is router-blind).
    pub routers: Vec<RouterStrategy>,
    /// Movement variants (default: `[home]`); same applicability as
    /// routers.
    pub movements: Vec<MovementModel>,
    /// Scheduler variants (default: `[greedy]`); same applicability as
    /// routers.
    pub schedulers: Vec<SchedulerStrategy>,
    /// Pass-pipeline spec run before every mapped cell
    /// (`dce|dce:LO-HI|partition:K`, comma-separated); `None` runs no
    /// pipeline. Estimate cells ignore it.
    pub passes: Option<String>,
    /// What each cell runs.
    pub mode: ExperimentMode,
    /// Which fields each row carries.
    pub select: ResultSelect,
    /// Per-axis filters.
    pub filter: AxisFilter,
    /// The Monte Carlo axis — required when (and only meaningful when)
    /// `mode` is [`ExperimentMode::MonteCarlo`].
    pub montecarlo: Option<MonteCarloSpec>,
}

impl ScenarioSpec {
    /// Creates a spec over the two mandatory axes with every default:
    /// base parameters only, `xy` router, `home` movement, `estimate`
    /// mode, `full` rows, no filters.
    #[must_use]
    pub fn new(
        workloads: impl IntoIterator<Item = impl Into<String>>,
        fabrics: impl IntoIterator<Item = FabricEntry>,
    ) -> Self {
        ScenarioSpec {
            workloads: workloads.into_iter().map(Into::into).collect(),
            fabrics: fabrics.into_iter().collect(),
            params: vec![ParamVariant::base("default")],
            routers: vec![RouterStrategy::Xy],
            movements: vec![MovementModel::HomeBased],
            schedulers: vec![SchedulerStrategy::Greedy],
            passes: None,
            mode: ExperimentMode::Estimate,
            select: ResultSelect::Full,
            filter: AxisFilter::default(),
            montecarlo: None,
        }
    }

    /// Replaces the parameter-variant axis.
    #[must_use]
    pub fn with_params(mut self, params: impl IntoIterator<Item = ParamVariant>) -> Self {
        self.params = params.into_iter().collect();
        self
    }

    /// Replaces the router axis.
    #[must_use]
    pub fn with_routers(mut self, routers: impl IntoIterator<Item = RouterStrategy>) -> Self {
        self.routers = routers.into_iter().collect();
        self
    }

    /// Replaces the movement axis.
    #[must_use]
    pub fn with_movements(mut self, movements: impl IntoIterator<Item = MovementModel>) -> Self {
        self.movements = movements.into_iter().collect();
        self
    }

    /// Replaces the scheduler axis.
    #[must_use]
    pub fn with_schedulers(
        mut self,
        schedulers: impl IntoIterator<Item = SchedulerStrategy>,
    ) -> Self {
        self.schedulers = schedulers.into_iter().collect();
        self
    }

    /// Runs a pass pipeline before every mapped cell (spec syntax:
    /// `dce|dce:LO-HI|partition:K`, comma-separated).
    #[must_use]
    pub fn with_passes(mut self, spec: impl Into<String>) -> Self {
        self.passes = Some(spec.into());
        self
    }

    /// Sets the mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ExperimentMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the result selector.
    #[must_use]
    pub fn with_select(mut self, select: ResultSelect) -> Self {
        self.select = select;
        self
    }

    /// Sets the filters.
    #[must_use]
    pub fn with_filter(mut self, filter: AxisFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the Monte Carlo axis and switches the spec into
    /// [`ExperimentMode::MonteCarlo`].
    #[must_use]
    pub fn with_montecarlo(mut self, montecarlo: MonteCarloSpec) -> Self {
        self.montecarlo = Some(montecarlo);
        self.mode = ExperimentMode::MonteCarlo;
        self
    }

    /// Serializes the spec envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("experiment")),
            (
                "workloads",
                Json::Arr(self.workloads.iter().map(Json::str).collect()),
            ),
            (
                "fabrics",
                Json::Arr(self.fabrics.iter().map(|f| f.to_json()).collect()),
            ),
            (
                "params",
                Json::Arr(self.params.iter().map(ParamVariant::to_json).collect()),
            ),
            (
                "routers",
                Json::Arr(
                    self.routers
                        .iter()
                        .map(|&r| Json::str(router_name(r)))
                        .collect(),
                ),
            ),
            (
                "movements",
                Json::Arr(
                    self.movements
                        .iter()
                        .map(|&m| Json::str(movement_name(m)))
                        .collect(),
                ),
            ),
            (
                "schedulers",
                Json::Arr(
                    self.schedulers
                        .iter()
                        .map(|&s| Json::str(scheduler_name(s)))
                        .collect(),
                ),
            ),
            (
                "passes",
                self.passes.as_deref().map(Json::str).unwrap_or(Json::Null),
            ),
            ("mode", Json::str(self.mode.name())),
            ("select", Json::str(self.select.name())),
            ("filter", self.filter.to_json()),
            (
                "montecarlo",
                self.montecarlo
                    .as_ref()
                    .map(MonteCarloSpec::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    /// Decodes a spec envelope. `params`, `routers`, `movements`,
    /// `mode`, `select` and `filter` are optional and default like
    /// [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors
    /// (axis *content* is validated later, by
    /// [`plan`](Self::plan)).
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "experiment spec";
        let workloads = field(value, "workloads", what)?
            .as_arr()
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`workloads` must be an array"))?
            .iter()
            .map(|w| {
                w.as_str().map(str::to_string).ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "workload names must be strings")
                })
            })
            .collect::<Result<_, _>>()?;
        let fabrics = field(value, "fabrics", what)?
            .as_arr()
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`fabrics` must be an array"))?
            .iter()
            .map(FabricEntry::from_json)
            .collect::<Result<_, _>>()?;
        let params = match value.get("params") {
            None | Some(Json::Null) => vec![ParamVariant::base("default")],
            Some(v) => v
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`params` must be an array"))?
                .iter()
                .map(ParamVariant::from_json)
                .collect::<Result<_, _>>()?,
        };
        fn named_axis<T>(
            value: &Json,
            key: &str,
            parse: impl Fn(&str) -> Option<T>,
            default: T,
        ) -> Result<Vec<T>, LeqaError> {
            match value.get(key) {
                None | Some(Json::Null) => Ok(vec![default]),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, format!("`{key}` must be an array"))
                    })?
                    .iter()
                    .map(|item| {
                        item.as_str().and_then(&parse).ok_or_else(|| {
                            LeqaError::new(ErrorKind::Json, format!("unknown name in `{key}` axis"))
                        })
                    })
                    .collect(),
            }
        }
        let routers = named_axis(value, "routers", router_from_name, RouterStrategy::Xy)?;
        let movements = named_axis(
            value,
            "movements",
            movement_from_name,
            MovementModel::HomeBased,
        )?;
        let schedulers = named_axis(
            value,
            "schedulers",
            scheduler_from_name,
            SchedulerStrategy::Greedy,
        )?;
        let passes = value
            .get("passes")
            .and_then(Json::as_str)
            .map(str::to_string);
        let mode = match value.get("mode") {
            None | Some(Json::Null) => ExperimentMode::Estimate,
            Some(v) => v
                .as_str()
                .and_then(ExperimentMode::from_name)
                .ok_or_else(|| {
                    LeqaError::new(
                        ErrorKind::Json,
                        "`mode` must be `estimate`, `map`, `compare` or `montecarlo`",
                    )
                })?,
        };
        let select = match value.get("select") {
            None | Some(Json::Null) => ResultSelect::Full,
            Some(v) => v
                .as_str()
                .and_then(ResultSelect::from_name)
                .ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "`select` must be `full` or `latency`")
                })?,
        };
        let filter = match value.get("filter") {
            None | Some(Json::Null) => AxisFilter::default(),
            Some(v) => AxisFilter::from_json(v)?,
        };
        let montecarlo = match value.get("montecarlo") {
            None | Some(Json::Null) => None,
            Some(v) => Some(MonteCarloSpec::from_json(v)?),
        };
        Ok(ScenarioSpec {
            workloads,
            fabrics,
            params,
            routers,
            movements,
            schedulers,
            passes,
            mode,
            select,
            filter,
            montecarlo,
        })
    }

    /// Expands and validates the grid without running anything — the
    /// `--dry-run` entry point.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Invalid`] for empty axes (including axes emptied by a
    /// filter), malformed fabric ranges, duplicate variant names, or a
    /// grid exceeding `filter.max_cells`; [`ErrorKind::Usage`] for
    /// workload names outside the grammar.
    pub fn plan(&self) -> Result<ExperimentPlan, LeqaError> {
        let invalid = |msg: String| LeqaError::new(ErrorKind::Invalid, msg);

        // Workload axis: dedupe, filter, validate names.
        if self.workloads.is_empty() {
            return Err(invalid("experiment workload axis is empty".into()));
        }
        let mut workloads: Vec<String> = Vec::new();
        for name in &self.workloads {
            if !workloads.contains(name) {
                workloads.push(name.clone());
            }
        }
        if let Some(pat) = &self.filter.workloads {
            workloads.retain(|w| w.contains(pat.as_str()));
            if workloads.is_empty() {
                return Err(invalid(format!(
                    "workload filter `{pat}` leaves no workloads"
                )));
            }
        }
        for name in &workloads {
            // Parse-only validation: a dry-run must never pay circuit
            // generation just to reject a typo.
            if !leqa_workloads::workload_name_is_known(name) {
                return Err(LeqaError::usage(format!(
                    "unknown workload `{name}`; names follow Table 3 (e.g. gf2^16mult) or the \
                     parametric forms (e.g. qft_64, random_12_200)"
                )));
            }
        }

        // Variant axes (validated before fabric expansion so the
        // per-side cell multiplier is known while ranges expand).
        if self.params.is_empty() {
            return Err(invalid("experiment params axis is empty".into()));
        }
        for (i, variant) in self.params.iter().enumerate() {
            if self.params[..i].iter().any(|v| v.name == variant.name) {
                return Err(invalid(format!(
                    "duplicate params variant name `{}`",
                    variant.name
                )));
            }
        }
        if self.routers.is_empty() {
            return Err(invalid("experiment router axis is empty".into()));
        }
        if self.movements.is_empty() {
            return Err(invalid("experiment movement axis is empty".into()));
        }
        if self.schedulers.is_empty() {
            return Err(invalid("experiment scheduler axis is empty".into()));
        }
        if let Some(spec) = self.passes.as_deref() {
            // Validate the pipeline spec at plan time so `--dry-run`
            // rejects typos before any cell runs.
            qspr::PassManager::parse(spec)
                .map_err(|msg| invalid(format!("bad experiment passes: {msg}")))?;
        }
        let montecarlo = match (self.mode, &self.montecarlo) {
            (ExperimentMode::MonteCarlo, Some(mc)) => {
                if mc.densities.is_empty() {
                    return Err(invalid("montecarlo `densities` axis is empty".into()));
                }
                for &d in &mc.densities {
                    if !(d.is_finite() && (0.0..=1.0).contains(&d)) {
                        return Err(invalid(format!("montecarlo density {d} is outside [0, 1]")));
                    }
                }
                if mc.trials == 0 {
                    return Err(invalid("montecarlo `trials` must be positive".into()));
                }
                Some(mc.clone())
            }
            (ExperimentMode::MonteCarlo, None) => {
                return Err(invalid(
                    "montecarlo mode needs a `montecarlo` section \
                     ({\"densities\": [..], \"trials\": N, \"seed\": S})"
                        .into(),
                ));
            }
            (_, Some(_)) => {
                return Err(invalid(
                    "a `montecarlo` section requires `mode`: `montecarlo`".into(),
                ));
            }
            (_, None) => None,
        };
        let trials_per_cell = montecarlo
            .as_ref()
            .map_or(1, |mc| mc.densities.len() as u64 * u64::from(mc.trials));
        let cells_per_side = workloads.len() as u64
            * self.params.len() as u64
            * self.routers.len() as u64
            * self.movements.len() as u64
            * self.schedulers.len() as u64
            * trials_per_cell;

        // Fabric axis: expand ranges with the side-bound filters applied
        // inline, dedupe overlaps (first occurrence wins). The
        // `max_cells` guard is enforced *while* expanding — a
        // pathological range must be rejected cheaply, not after
        // materializing it — and counts exactly the sides that survive
        // the filters.
        if self.fabrics.is_empty() {
            return Err(invalid("experiment fabric axis is empty".into()));
        }
        let min_side = self.filter.min_side.unwrap_or(0);
        let max_side = self.filter.max_side.unwrap_or(u32::MAX);

        // Arithmetic pre-check before anything is materialized: sum each
        // entry's post-filter candidate count in O(#entries). The sum is
        // an upper bound (overlaps still dedupe below), so rejecting on
        // it never rejects a grid the dedupe pass would have admitted
        // past the cap — it can only reject specs that were oversized
        // entry-by-entry, which MAX_FABRIC_SIDES is far too generous for
        // anyway. This keeps `--dry-run` O(spec size) even for absurd
        // ranges with no `max_cells` set.
        let mut candidate_sides = 0u64;
        for entry in &self.fabrics {
            candidate_sides = candidate_sides.saturating_add(match *entry {
                FabricEntry::Side(s) => u64::from(s >= min_side && s <= max_side),
                FabricEntry::Range { min, max, step } if step > 0 && min <= max => {
                    match range_window(min, max, step, min_side, max_side) {
                        None => 0,
                        Some((first, hi)) => {
                            (u64::from(hi) - u64::from(first)) / u64::from(step) + 1
                        }
                    }
                }
                // Malformed ranges error out in the expansion loop below.
                FabricEntry::Range { .. } => 0,
            });
        }
        if candidate_sides > MAX_FABRIC_SIDES {
            return Err(invalid(format!(
                "fabric axis expands to {candidate_sides} candidate sides (cap \
                 {MAX_FABRIC_SIDES}); narrow the ranges or add side filters"
            )));
        }
        let mut sides: Vec<u32> = Vec::new();
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut push = |side: u32| -> Result<(), LeqaError> {
            if side < min_side || side > max_side || !seen.insert(side) {
                return Ok(());
            }
            if let Some(max_cells) = self.filter.max_cells {
                let cells = (sides.len() as u64 + 1).saturating_mul(cells_per_side);
                if cells > max_cells {
                    return Err(invalid(format!(
                        "experiment expands to over {cells} cells, above the spec's \
                         max_cells {max_cells}"
                    )));
                }
            }
            sides.push(side);
            Ok(())
        };
        for entry in &self.fabrics {
            match *entry {
                FabricEntry::Side(0) => {
                    return Err(invalid("fabric side must be positive".into()));
                }
                FabricEntry::Side(s) => push(s)?,
                FabricEntry::Range { min, max, step } => {
                    if min == 0 {
                        return Err(invalid("fabric range `min` must be positive".into()));
                    }
                    if step == 0 {
                        return Err(invalid("fabric range `step` must be positive".into()));
                    }
                    if min > max {
                        return Err(invalid(format!(
                            "fabric range {min}..{max} is empty (min > max)"
                        )));
                    }
                    // Iterate only the filtered window (aligned to the
                    // range's stride): a huge range narrowed by side
                    // filters must not cost O(range) iterations.
                    let Some((first, hi)) = range_window(min, max, step, min_side, max_side) else {
                        continue;
                    };
                    let mut side = first;
                    loop {
                        push(side)?;
                        side = match side.checked_add(step) {
                            Some(next) if next <= hi => next,
                            _ => break,
                        };
                    }
                }
            }
        }
        if sides.is_empty() {
            return Err(invalid("fabric filter leaves no candidate sides".into()));
        }
        let cells = cells_per_side * sides.len() as u64;

        Ok(ExperimentPlan {
            workloads,
            sides,
            params: self.params.clone(),
            routers: self.routers.clone(),
            movements: self.movements.clone(),
            schedulers: self.schedulers.clone(),
            passes: self.passes.clone(),
            mode: self.mode,
            select: self.select,
            cells,
            montecarlo,
        })
    }
}

// ── The expanded plan ────────────────────────────────────────────────────

/// A validated, fully expanded grid (axes deduplicated and filtered).
///
/// Cell order is fixed and documented: workloads × params × routers ×
/// movements × schedulers × sides, fabric innermost — the order an
/// equivalent serial loop of single-cell requests would use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ExperimentPlan {
    /// Deduplicated, filtered workload names.
    pub workloads: Vec<String>,
    /// Deduplicated, filtered square sides (first-occurrence order).
    pub sides: Vec<u32>,
    /// Parameter variants.
    pub params: Vec<ParamVariant>,
    /// Router variants.
    pub routers: Vec<RouterStrategy>,
    /// Movement variants.
    pub movements: Vec<MovementModel>,
    /// Scheduler variants.
    pub schedulers: Vec<SchedulerStrategy>,
    /// Pass-pipeline spec run before every mapped cell (`None` = no
    /// pipeline).
    pub passes: Option<String>,
    /// The mode every cell runs.
    pub mode: ExperimentMode,
    /// The row selector.
    pub select: ResultSelect,
    /// Total cell count (product of the axis lengths; in `montecarlo`
    /// mode this includes the `densities × trials` expansion).
    pub cells: u64,
    /// The validated Monte Carlo axis (`montecarlo` mode only).
    pub montecarlo: Option<MonteCarloSpec>,
}

impl ExperimentPlan {
    /// The `experiment_plan` record printed by `--dry-run`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("experiment_plan")),
            ("cells", Json::Num(self.cells as f64)),
            ("workloads", Json::num(self.workloads.len() as u32)),
            ("params", Json::num(self.params.len() as u32)),
            ("routers", Json::num(self.routers.len() as u32)),
            ("movements", Json::num(self.movements.len() as u32)),
            ("schedulers", Json::num(self.schedulers.len() as u32)),
            ("sides", Json::num(self.sides.len() as u32)),
            ("mode", Json::str(self.mode.name())),
            ("select", Json::str(self.select.name())),
            (
                "montecarlo",
                self.montecarlo
                    .as_ref()
                    .map(|mc| {
                        Json::obj(vec![
                            ("densities", Json::num(mc.densities.len() as u32)),
                            ("trials", Json::num(mc.trials)),
                        ])
                    })
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

// ── Rows ─────────────────────────────────────────────────────────────────

/// The mode-specific measurements of one cell. Every field is `None`
/// when the program does not fit the cell's fabric (`fit: false` rows).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CellMetrics {
    /// `estimate` mode quantities (a subset of
    /// [`EstimateResponse`](crate::EstimateResponse)).
    Estimate {
        /// Eq. 1 latency in microseconds.
        latency_us: Option<f64>,
        /// `L_CNOT^avg` (Eq. 2) in microseconds.
        l_cnot_avg_us: Option<f64>,
        /// `d_uncong` (Eq. 12) in microseconds.
        d_uncong_us: Option<f64>,
        /// `B` (Eq. 7).
        avg_zone_area: Option<f64>,
        /// The integer zone side of Eq. 5.
        zone_side: Option<u32>,
        /// CNOTs on the routing-aware critical path.
        critical_cnots: Option<u64>,
    },
    /// `map` mode quantities (a subset of
    /// [`MapResponse`](crate::MapResponse)).
    Map {
        /// The detailed schedule's latency in microseconds.
        latency_us: Option<f64>,
        /// CNOTs routed.
        cnot_ops: Option<u64>,
        /// Average CNOT routing distance in hops.
        avg_cnot_distance: Option<f64>,
        /// Congestion wait summed over qubits, in microseconds.
        congestion_wait_us: Option<f64>,
        /// Traversals through the busiest channel.
        max_channel_load: Option<u64>,
    },
    /// `compare` mode quantities.
    Compare {
        /// QSPR's detailed-schedule latency in microseconds.
        actual_us: Option<f64>,
        /// LEQA's estimate in microseconds.
        estimated_us: Option<f64>,
        /// `|est − actual| / actual` in percent (`None` when unfit or
        /// `actual_us` is 0).
        error_pct: Option<f64>,
    },
    /// `montecarlo` mode quantities: one seeded trial on one randomly
    /// defective fabric.
    MonteCarlo {
        /// Defect density this trial was drawn at.
        density: f64,
        /// Zero-based trial index within the density.
        trial: u32,
        /// Whether every CNOT found a defect-free route (`None` when
        /// the program did not fit the fabric's *live* cells — those
        /// trials are `fit: false` rows and excluded from the
        /// routability rate).
        routable: Option<bool>,
        /// The detailed schedule's latency (`None` unless routable).
        latency_us: Option<f64>,
        /// Congestion wait summed over qubits (`None` unless routable).
        congestion_wait_us: Option<f64>,
        /// Defective cells on this trial's fabric.
        dead_cells: Option<u64>,
        /// Defective channels on this trial's fabric.
        dead_channels: Option<u64>,
    },
}

impl CellMetrics {
    /// The headline latency the summary aggregates (`latency_us`;
    /// `actual_us` in compare mode).
    #[must_use]
    pub fn primary_latency_us(&self) -> Option<f64> {
        match self {
            CellMetrics::Estimate { latency_us, .. }
            | CellMetrics::Map { latency_us, .. }
            | CellMetrics::MonteCarlo { latency_us, .. } => *latency_us,
            CellMetrics::Compare { actual_us, .. } => *actual_us,
        }
    }

    fn fit(&self) -> bool {
        match self {
            // An unroutable trial still *fit* the fabric — the placement
            // succeeded; only the routing percolated. Unfit is reserved
            // for programs larger than the live-cell count.
            CellMetrics::MonteCarlo { routable, .. } => routable.is_some(),
            _ => self.primary_latency_us().is_some(),
        }
    }

    fn push_fields(&self, select: ResultSelect, pairs: &mut Vec<(&'static str, Json)>) {
        match self {
            CellMetrics::Estimate {
                latency_us,
                l_cnot_avg_us,
                d_uncong_us,
                avg_zone_area,
                zone_side,
                critical_cnots,
            } => {
                pairs.push(("latency_us", json_opt_num(*latency_us)));
                if select == ResultSelect::Full {
                    pairs.push(("l_cnot_avg_us", json_opt_num(*l_cnot_avg_us)));
                    pairs.push(("d_uncong_us", json_opt_num(*d_uncong_us)));
                    pairs.push(("avg_zone_area", json_opt_num(*avg_zone_area)));
                    pairs.push(("zone_side", zone_side.map(Json::num).unwrap_or(Json::Null)));
                    pairs.push((
                        "critical_cnots",
                        critical_cnots
                            .map(|n| Json::Num(n as f64))
                            .unwrap_or(Json::Null),
                    ));
                }
            }
            CellMetrics::Map {
                latency_us,
                cnot_ops,
                avg_cnot_distance,
                congestion_wait_us,
                max_channel_load,
            } => {
                pairs.push(("latency_us", json_opt_num(*latency_us)));
                if select == ResultSelect::Full {
                    pairs.push((
                        "cnot_ops",
                        cnot_ops.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null),
                    ));
                    pairs.push(("avg_cnot_distance", json_opt_num(*avg_cnot_distance)));
                    pairs.push(("congestion_wait_us", json_opt_num(*congestion_wait_us)));
                    pairs.push((
                        "max_channel_load",
                        max_channel_load
                            .map(|n| Json::Num(n as f64))
                            .unwrap_or(Json::Null),
                    ));
                }
            }
            CellMetrics::Compare {
                actual_us,
                estimated_us,
                error_pct,
            } => {
                pairs.push(("actual_us", json_opt_num(*actual_us)));
                pairs.push(("estimated_us", json_opt_num(*estimated_us)));
                if select == ResultSelect::Full {
                    pairs.push(("error_pct", json_opt_num(*error_pct)));
                }
            }
            CellMetrics::MonteCarlo {
                density,
                trial,
                routable,
                latency_us,
                congestion_wait_us,
                dead_cells,
                dead_channels,
            } => {
                pairs.push(("density", Json::Num(*density)));
                pairs.push(("trial", Json::num(*trial)));
                pairs.push(("routable", routable.map(Json::Bool).unwrap_or(Json::Null)));
                pairs.push(("latency_us", json_opt_num(*latency_us)));
                if select == ResultSelect::Full {
                    pairs.push(("congestion_wait_us", json_opt_num(*congestion_wait_us)));
                    pairs.push((
                        "dead_cells",
                        dead_cells
                            .map(|n| Json::Num(n as f64))
                            .unwrap_or(Json::Null),
                    ));
                    pairs.push((
                        "dead_channels",
                        dead_channels
                            .map(|n| Json::Num(n as f64))
                            .unwrap_or(Json::Null),
                    ));
                }
            }
        }
    }

    fn from_json(value: &Json, mode: ExperimentMode, what: &str) -> Result<Self, LeqaError> {
        Ok(match mode {
            ExperimentMode::Estimate => CellMetrics::Estimate {
                latency_us: opt_f64(value, "latency_us", what)?,
                l_cnot_avg_us: opt_f64(value, "l_cnot_avg_us", what)?,
                d_uncong_us: opt_f64(value, "d_uncong_us", what)?,
                avg_zone_area: opt_f64(value, "avg_zone_area", what)?,
                zone_side: opt_u32(value, "zone_side", what)?,
                critical_cnots: opt_u64(value, "critical_cnots", what)?,
            },
            ExperimentMode::Map => CellMetrics::Map {
                latency_us: opt_f64(value, "latency_us", what)?,
                cnot_ops: opt_u64(value, "cnot_ops", what)?,
                avg_cnot_distance: opt_f64(value, "avg_cnot_distance", what)?,
                congestion_wait_us: opt_f64(value, "congestion_wait_us", what)?,
                max_channel_load: opt_u64(value, "max_channel_load", what)?,
            },
            ExperimentMode::Compare => CellMetrics::Compare {
                actual_us: opt_f64(value, "actual_us", what)?,
                estimated_us: opt_f64(value, "estimated_us", what)?,
                error_pct: opt_f64(value, "error_pct", what)?,
            },
            ExperimentMode::MonteCarlo => CellMetrics::MonteCarlo {
                density: field(value, "density", what)?.as_f64().ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "cell `density` must be a number")
                })?,
                trial: u64_field(value, "trial", what)?
                    .try_into()
                    .map_err(|_| LeqaError::new(ErrorKind::Json, "cell `trial` out of range"))?,
                routable: match value.get("routable") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_bool().ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, "cell `routable` must be a boolean")
                    })?),
                },
                latency_us: opt_f64(value, "latency_us", what)?,
                congestion_wait_us: opt_f64(value, "congestion_wait_us", what)?,
                dead_cells: opt_u64(value, "dead_cells", what)?,
                dead_channels: opt_u64(value, "dead_channels", what)?,
            },
        })
    }
}

/// One NDJSON row: the cell's coordinates on every axis plus its
/// measurements.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct CellRow {
    /// Zero-based cell index in plan order.
    pub cell: u64,
    /// Workload name.
    pub workload: String,
    /// Parameter-variant name.
    pub params: String,
    /// Router variant.
    pub router: RouterStrategy,
    /// Movement variant.
    pub movement: MovementModel,
    /// Scheduler variant.
    pub scheduler: SchedulerStrategy,
    /// Square fabric side.
    pub side: u32,
    /// Whether the program fits this cell's fabric.
    pub fit: bool,
    /// The measurements (every field `None` when `fit` is false).
    pub metrics: CellMetrics,
}

impl CellRow {
    /// Serializes the row (byte-stable key order; the key set depends
    /// only on the spec's mode and selector, never on the cell).
    #[must_use]
    pub fn to_json(&self, select: ResultSelect) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("experiment_cell")),
            ("cell", Json::Num(self.cell as f64)),
            ("workload", Json::str(&self.workload)),
            ("params", Json::str(&self.params)),
            ("router", Json::str(router_name(self.router))),
            ("movement", Json::str(movement_name(self.movement))),
            ("scheduler", Json::str(scheduler_name(self.scheduler))),
            ("side", Json::num(self.side)),
            ("fit", Json::Bool(self.fit)),
        ];
        self.metrics.push_fields(select, &mut pairs);
        Json::obj(pairs)
    }

    /// Decodes a row emitted by [`to_json`](Self::to_json). Fields the
    /// selector dropped decode as `None`.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json, mode: ExperimentMode) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "experiment cell";
        let metrics = CellMetrics::from_json(value, mode, what)?;
        Ok(CellRow {
            cell: u64_field(value, "cell", what)?,
            workload: str_field(value, "workload", what)?,
            params: str_field(value, "params", what)?,
            router: router_from_name(&str_field(value, "router", what)?).ok_or_else(|| {
                LeqaError::new(ErrorKind::Json, "experiment cell: unknown router")
            })?,
            movement: movement_from_name(&str_field(value, "movement", what)?).ok_or_else(
                || LeqaError::new(ErrorKind::Json, "experiment cell: unknown movement"),
            )?,
            // Optional for rows written before the scheduler axis existed.
            scheduler: match value.get("scheduler").and_then(Json::as_str) {
                None => SchedulerStrategy::Greedy,
                Some(name) => scheduler_from_name(name).ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "experiment cell: unknown scheduler")
                })?,
            },
            side: u64_field(value, "side", what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, "cell side out of range"))?,
            fit: field(value, "fit", what)?
                .as_bool()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "cell `fit` must be a boolean"))?,
            metrics,
        })
    }
}

// ── Summary ──────────────────────────────────────────────────────────────

/// Per-workload aggregate of the summary record.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct WorkloadSummary {
    /// The workload name.
    pub workload: String,
    /// Cells of this workload whose program fit the fabric.
    pub fit_cells: u64,
    /// Minimum primary latency over fitting cells.
    pub min_latency_us: Option<f64>,
    /// Maximum primary latency over fitting cells.
    pub max_latency_us: Option<f64>,
    /// Fabric side of the minimum-latency cell (first on ties).
    pub argmin_side: Option<u32>,
    /// Cell index of the minimum-latency cell (first on ties).
    pub argmin_cell: Option<u64>,
}

impl WorkloadSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::str(&self.workload)),
            ("fit_cells", Json::Num(self.fit_cells as f64)),
            ("min_latency_us", json_opt_num(self.min_latency_us)),
            ("max_latency_us", json_opt_num(self.max_latency_us)),
            (
                "argmin_side",
                self.argmin_side.map(Json::num).unwrap_or(Json::Null),
            ),
            (
                "argmin_cell",
                self.argmin_cell
                    .map(|n| Json::Num(n as f64))
                    .unwrap_or(Json::Null),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "workload summary";
        Ok(WorkloadSummary {
            workload: str_field(value, "workload", what)?,
            fit_cells: u64_field(value, "fit_cells", what)?,
            min_latency_us: opt_f64(value, "min_latency_us", what)?,
            max_latency_us: opt_f64(value, "max_latency_us", what)?,
            argmin_side: opt_u32(value, "argmin_side", what)?,
            argmin_cell: opt_u64(value, "argmin_cell", what)?,
        })
    }
}

/// Per-density aggregate of a Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DensityStats {
    /// The defect density.
    pub density: f64,
    /// Trials whose program fit the fabric's live cells.
    pub trials: u64,
    /// Fitting trials where every CNOT found a defect-free route.
    pub routable: u64,
    /// `routable / trials` (`None` when no trial fit).
    pub routability: Option<f64>,
    /// 95 % Wilson-interval lower bound on the routability.
    pub ci_low: Option<f64>,
    /// 95 % Wilson-interval upper bound on the routability.
    pub ci_high: Option<f64>,
    /// Median latency over routable trials, in microseconds.
    pub p50_latency_us: Option<f64>,
    /// 90th-percentile latency over routable trials, in microseconds.
    pub p90_latency_us: Option<f64>,
}

impl DensityStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("density", Json::Num(self.density)),
            ("trials", Json::Num(self.trials as f64)),
            ("routable", Json::Num(self.routable as f64)),
            ("routability", json_opt_num(self.routability)),
            ("ci_low", json_opt_num(self.ci_low)),
            ("ci_high", json_opt_num(self.ci_high)),
            ("p50_latency_us", json_opt_num(self.p50_latency_us)),
            ("p90_latency_us", json_opt_num(self.p90_latency_us)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "density stats";
        Ok(DensityStats {
            density: field(value, "density", what)?.as_f64().ok_or_else(|| {
                LeqaError::new(ErrorKind::Json, "density stats `density` must be a number")
            })?,
            trials: u64_field(value, "trials", what)?,
            routable: u64_field(value, "routable", what)?,
            routability: opt_f64(value, "routability", what)?,
            ci_low: opt_f64(value, "ci_low", what)?,
            ci_high: opt_f64(value, "ci_high", what)?,
            p50_latency_us: opt_f64(value, "p50_latency_us", what)?,
            p90_latency_us: opt_f64(value, "p90_latency_us", what)?,
        })
    }
}

/// The Monte Carlo block of the summary record: per-density routability
/// with Wilson intervals and the interpolated critical defect density
/// (the percolation knee), with a confidence interval obtained by
/// running the same crossing scan on the Wilson-bound curves — the
/// finite-sampling treatment of percolation-threshold estimation
/// (after arXiv:1307.2755).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MonteCarloSummary {
    /// One aggregate per swept density, sorted ascending by density.
    pub densities: Vec<DensityStats>,
    /// The density where the routability rate crosses 0.5, linearly
    /// interpolated between the bracketing sweep points (`None` when
    /// the sweep never crosses — every density routable, or none).
    pub critical_density: Option<f64>,
    /// Lower confidence bound on the critical density (the 0.5-crossing
    /// of the Wilson *lower*-bound curve; routability falls with
    /// density, so the pessimistic curve crosses earlier). Clamped to
    /// the swept range.
    pub critical_ci_low: Option<f64>,
    /// Upper confidence bound on the critical density (crossing of the
    /// Wilson upper-bound curve), clamped to the swept range.
    pub critical_ci_high: Option<f64>,
}

impl MonteCarloSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "densities",
                Json::Arr(self.densities.iter().map(DensityStats::to_json).collect()),
            ),
            ("critical_density", json_opt_num(self.critical_density)),
            ("critical_ci_low", json_opt_num(self.critical_ci_low)),
            ("critical_ci_high", json_opt_num(self.critical_ci_high)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "montecarlo summary";
        Ok(MonteCarloSummary {
            densities: field(value, "densities", what)?
                .as_arr()
                .ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "montecarlo `densities` must be an array")
                })?
                .iter()
                .map(DensityStats::from_json)
                .collect::<Result<_, _>>()?,
            critical_density: opt_f64(value, "critical_density", what)?,
            critical_ci_low: opt_f64(value, "critical_ci_low", what)?,
            critical_ci_high: opt_f64(value, "critical_ci_high", what)?,
        })
    }
}

/// The 95 % Wilson score interval for `successes / trials` — the
/// binomial interval that stays honest at the extremes (rate 0 or 1,
/// small n), where the naive normal interval collapses.
fn wilson_interval(successes: u64, trials: u64) -> Option<(f64, f64)> {
    if trials == 0 {
        return None;
    }
    let z = 1.96_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At the extremes the Wilson bound is exactly the rate; snap past
    // the float noise so `lo ≤ p̂ ≤ hi` holds bit-for-bit.
    let lo = if successes == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    Some((lo, hi))
}

/// Linear-interpolated quantile of an already-sorted sample.
fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    match sorted {
        [] => None,
        [one] => Some(*one),
        many => {
            let pos = q * (many.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let frac = pos - lo as f64;
            let hi = (lo + 1).min(many.len() - 1);
            Some(many[lo] + frac * (many[hi] - many[lo]))
        }
    }
}

/// The density where a monotone-decreasing-ish rate curve crosses 0.5,
/// linearly interpolated between the first bracketing pair. `points`
/// must be sorted ascending by density; entries with no rate are
/// skipped.
fn crossing_density(points: &[(f64, Option<f64>)]) -> Option<f64> {
    let known: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|&(d, r)| r.map(|r| (d, r)))
        .collect();
    for pair in known.windows(2) {
        let (d0, r0) = pair[0];
        let (d1, r1) = pair[1];
        if r0 >= 0.5 && r1 < 0.5 {
            // r0 == r1 cannot reach here (r0 >= 0.5 > r1), so the
            // divisor is nonzero.
            return Some(d0 + (r0 - 0.5) / (r0 - r1) * (d1 - d0));
        }
    }
    None
}

/// The session cache-counter delta over one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CacheDelta {
    /// Profiles built during the run.
    pub profile_builds: u64,
    /// Loads served from the cache.
    pub cache_hits: u64,
    /// Loads that lowered a program.
    pub cache_misses: u64,
    /// Total loads.
    pub loads: u64,
}

impl CacheDelta {
    fn between(before: CacheStats, after: CacheStats) -> Self {
        CacheDelta {
            profile_builds: after.profile_builds.saturating_sub(before.profile_builds),
            cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
            loads: after.loads.saturating_sub(before.loads),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("profile_builds", Json::Num(self.profile_builds as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("loads", Json::Num(self.loads as f64)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "cache delta";
        Ok(CacheDelta {
            profile_builds: u64_field(value, "profile_builds", what)?,
            cache_hits: u64_field(value, "cache_hits", what)?,
            cache_misses: u64_field(value, "cache_misses", what)?,
            loads: u64_field(value, "loads", what)?,
        })
    }
}

/// The final NDJSON record of a run: grid totals, per-workload
/// aggregates, cache-hit accounting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ExperimentSummary {
    /// Total cells executed.
    pub cells: u64,
    /// Cells whose program fit its fabric.
    pub fit_cells: u64,
    /// One aggregate per workload, in axis order.
    pub workloads: Vec<WorkloadSummary>,
    /// Monte Carlo yield statistics (`Some` only in montecarlo mode).
    pub montecarlo: Option<MonteCarloSummary>,
    /// Session cache-counter delta over the run.
    pub cache: CacheDelta,
}

impl ExperimentSummary {
    /// Serializes the summary record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("experiment_summary")),
            ("cells", Json::Num(self.cells as f64)),
            ("fit_cells", Json::Num(self.fit_cells as f64)),
            (
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(WorkloadSummary::to_json)
                        .collect(),
                ),
            ),
        ];
        // Emitted only in montecarlo mode: summaries of the other modes
        // stay byte-identical to what they were before the key existed.
        if let Some(mc) = &self.montecarlo {
            fields.push(("montecarlo", mc.to_json()));
        }
        fields.push(("cache", self.cache.to_json()));
        Json::obj(fields)
    }

    /// Decodes a summary record.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "experiment summary";
        Ok(ExperimentSummary {
            cells: u64_field(value, "cells", what)?,
            fit_cells: u64_field(value, "fit_cells", what)?,
            workloads: field(value, "workloads", what)?
                .as_arr()
                .ok_or_else(|| {
                    LeqaError::new(ErrorKind::Json, "summary `workloads` must be an array")
                })?
                .iter()
                .map(WorkloadSummary::from_json)
                .collect::<Result<_, _>>()?,
            montecarlo: match value.get("montecarlo") {
                None | Some(Json::Null) => None,
                Some(mc) => Some(MonteCarloSummary::from_json(mc)?),
            },
            cache: CacheDelta::from_json(field(value, "cache", what)?)?,
        })
    }
}

/// The collected response of [`Session::batch_experiment`]: every row
/// plus the summary, in one envelope.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ExperimentResponse {
    /// The mode the cells ran.
    pub mode: ExperimentMode,
    /// The row selector used.
    pub select: ResultSelect,
    /// One row per cell, in plan order.
    pub rows: Vec<CellRow>,
    /// The final summary record.
    pub summary: ExperimentSummary,
}

impl ExperimentResponse {
    /// Serializes the response envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as u32)),
            ("op", Json::str("experiment_result")),
            ("mode", Json::str(self.mode.name())),
            ("select", Json::str(self.select.name())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| r.to_json(self.select)).collect()),
            ),
            ("summary", self.summary.to_json()),
        ])
    }

    /// Decodes a response envelope.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on schema-version mismatch or shape errors.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        check_schema_version(value)?;
        let what = "experiment result";
        let mode = str_field(value, "mode", what)?;
        let mode = ExperimentMode::from_name(&mode)
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "unknown experiment mode"))?;
        let select = str_field(value, "select", what)?;
        let select = ResultSelect::from_name(&select)
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "unknown experiment selector"))?;
        Ok(ExperimentResponse {
            mode,
            select,
            rows: field(value, "rows", what)?
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`rows` must be an array"))?
                .iter()
                .map(|r| CellRow::from_json(r, mode))
                .collect::<Result<_, _>>()?,
            summary: ExperimentSummary::from_json(field(value, "summary", what)?)?,
        })
    }
}

/// Writes a run's NDJSON stream (one row per line, then the summary
/// record) to `out`.
///
/// # Errors
///
/// [`ErrorKind::Io`] on write failures.
pub fn write_ndjson(
    response: &ExperimentResponse,
    out: &mut dyn std::io::Write,
) -> Result<(), LeqaError> {
    for row in &response.rows {
        writeln!(out, "{}", row.to_json(response.select).encode()).map_err(LeqaError::from)?;
    }
    writeln!(out, "{}", response.summary.to_json().encode()).map_err(LeqaError::from)?;
    Ok(())
}

// ── The runner ───────────────────────────────────────────────────────────

/// Accumulates the per-workload aggregates while rows stream.
struct SummaryAccumulator {
    workloads: Vec<WorkloadSummary>,
    cells: u64,
    fit_cells: u64,
    montecarlo: Option<MonteCarloSummary>,
}

impl SummaryAccumulator {
    fn new(workloads: &[String]) -> Self {
        SummaryAccumulator {
            workloads: workloads
                .iter()
                .map(|w| WorkloadSummary {
                    workload: w.clone(),
                    fit_cells: 0,
                    min_latency_us: None,
                    max_latency_us: None,
                    argmin_side: None,
                    argmin_cell: None,
                })
                .collect(),
            cells: 0,
            fit_cells: 0,
            montecarlo: None,
        }
    }

    fn observe(&mut self, workload_index: usize, row: &CellRow) {
        self.cells += 1;
        let Some(latency) = row.metrics.primary_latency_us() else {
            return;
        };
        self.fit_cells += 1;
        let agg = &mut self.workloads[workload_index];
        agg.fit_cells += 1;
        if agg.min_latency_us.is_none_or(|best| latency < best) {
            agg.min_latency_us = Some(latency);
            agg.argmin_side = Some(row.side);
            agg.argmin_cell = Some(row.cell);
        }
        if agg.max_latency_us.is_none_or(|worst| latency > worst) {
            agg.max_latency_us = Some(latency);
        }
    }

    fn finish(self, cache: CacheDelta) -> ExperimentSummary {
        ExperimentSummary {
            cells: self.cells,
            fit_cells: self.fit_cells,
            workloads: self.workloads,
            montecarlo: self.montecarlo,
            cache,
        }
    }
}

/// A grid-cell descriptor for the map/compare fan-out phase.
struct MapCell {
    workload_index: usize,
    param_index: usize,
    router: RouterStrategy,
    movement: MovementModel,
    scheduler: SchedulerStrategy,
    side: u32,
}

/// A trial descriptor for the Monte Carlo fan-out phase. The seed is
/// precomputed from the scenario seed and the cell's plan index so the
/// fan-out order cannot influence which fabric a trial sees.
struct McCell {
    workload_index: usize,
    param_index: usize,
    router: RouterStrategy,
    movement: MovementModel,
    scheduler: SchedulerStrategy,
    side: u32,
    density: f64,
    trial: u32,
    seed: u64,
}

/// Executes a validated [`ScenarioSpec`] against a [`Session`],
/// streaming one [`CellRow`] per cell in plan order.
pub struct ExperimentRunner<'s> {
    session: &'s Session,
    plan: ExperimentPlan,
}

impl<'s> ExperimentRunner<'s> {
    /// Expands and validates the spec against the session.
    ///
    /// # Errors
    ///
    /// The [`plan`](ScenarioSpec::plan) errors, plus
    /// [`ErrorKind::Invalid`] for parameter overrides that violate the
    /// physical-parameter rules.
    pub fn new(session: &'s Session, spec: &ScenarioSpec) -> Result<Self, LeqaError> {
        let plan = spec.plan()?;
        // Surface bad parameter overrides before any cell runs.
        for variant in &plan.params {
            variant.apply(session.params())?;
        }
        Ok(ExperimentRunner { session, plan })
    }

    /// The expanded grid.
    #[must_use]
    pub fn plan(&self) -> &ExperimentPlan {
        &self.plan
    }

    /// Runs the grid, invoking `sink` once per cell in plan order, and
    /// returns the summary record.
    ///
    /// Distinct programs are loaded once through the session's sharded
    /// profile cache (concurrently under the `parallel` feature); the
    /// fabric axis of `estimate` cells rides one sweep-engine call per
    /// (workload, params) group; `map`/`compare` cells fan out over the
    /// worker pool. Rows are identical to an equivalent serial loop of
    /// single-cell requests regardless of the feature set.
    ///
    /// # Errors
    ///
    /// Load or parameter errors, and whatever `sink` returns (rows
    /// produced so far have already been sunk).
    pub fn run(
        &self,
        sink: &mut dyn FnMut(&CellRow) -> Result<(), LeqaError>,
    ) -> Result<ExperimentSummary, LeqaError> {
        let plan = &self.plan;
        let stats_before = self.session.cache_stats();

        // Warm phase: load every distinct workload through the shared
        // cache (the fan-out is a no-op for already-resident programs).
        let handles: Vec<ProgramHandle> = fan_out(&plan.workloads, |name| {
            self.session.load(&ProgramSpec::bench(name.clone()))
        })
        .into_iter()
        .collect::<Result<_, _>>()?;

        let variant_params: Vec<PhysicalParams> = plan
            .params
            .iter()
            .map(|v| v.apply(self.session.params()))
            .collect::<Result<_, _>>()?;

        let mut acc = SummaryAccumulator::new(&plan.workloads);
        match plan.mode {
            ExperimentMode::Estimate => {
                self.run_estimate(&handles, &variant_params, &mut acc, sink)?
            }
            ExperimentMode::Map | ExperimentMode::Compare => {
                self.run_mapped(&handles, &variant_params, &mut acc, sink)?;
            }
            ExperimentMode::MonteCarlo => {
                self.run_montecarlo(&handles, &variant_params, &mut acc, sink)?;
            }
        }

        let cache = CacheDelta::between(stats_before, self.session.cache_stats());
        Ok(acc.finish(cache))
    }

    /// Estimate mode: one sweep-engine pass per (workload, params) group
    /// covers the whole fabric axis; router/movement variants replay the
    /// group's points (the estimator is router-blind, so the cells are
    /// bit-identical by construction *and* by the sweep-engine contract).
    fn run_estimate(
        &self,
        handles: &[ProgramHandle],
        variant_params: &[PhysicalParams],
        acc: &mut SummaryAccumulator,
        sink: &mut dyn FnMut(&CellRow) -> Result<(), LeqaError>,
    ) -> Result<(), LeqaError> {
        let plan = &self.plan;
        let mut cell = 0u64;
        for (wi, handle) in handles.iter().enumerate() {
            let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
            for (pi, params) in variant_params.iter().enumerate() {
                let points = sweep_profile_squares(
                    &profile,
                    params,
                    *self.session.options(),
                    plan.sides.iter().copied(),
                )
                .map_err(LeqaError::from)?;
                for &router in &plan.routers {
                    for &movement in &plan.movements {
                        for &scheduler in &plan.schedulers {
                            for point in &points {
                                let row = estimate_row(
                                    cell,
                                    &plan.workloads[wi],
                                    &plan.params[pi].name,
                                    router,
                                    movement,
                                    scheduler,
                                    point,
                                );
                                acc.observe(wi, &row);
                                sink(&row)?;
                                cell += 1;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Map/compare modes: every cell is an independent QSPR run, fanned
    /// out over the worker pool; rows are emitted in plan order.
    fn run_mapped(
        &self,
        handles: &[ProgramHandle],
        variant_params: &[PhysicalParams],
        acc: &mut SummaryAccumulator,
        sink: &mut dyn FnMut(&CellRow) -> Result<(), LeqaError>,
    ) -> Result<(), LeqaError> {
        let plan = &self.plan;
        let mut cells: Vec<MapCell> = Vec::with_capacity(plan.cells as usize);
        for wi in 0..plan.workloads.len() {
            for pi in 0..variant_params.len() {
                for &router in &plan.routers {
                    for &movement in &plan.movements {
                        for &scheduler in &plan.schedulers {
                            for &side in &plan.sides {
                                cells.push(MapCell {
                                    workload_index: wi,
                                    param_index: pi,
                                    router,
                                    movement,
                                    scheduler,
                                    side,
                                });
                            }
                        }
                    }
                }
            }
        }

        let pipeline = self.pipeline()?;
        let results: Vec<Result<CellMetrics, LeqaError>> = fan_out(&cells, |c| {
            self.run_map_cell(
                c,
                &handles[c.workload_index],
                &variant_params[c.param_index],
                pipeline.clone(),
            )
        });

        for (i, (cell, metrics)) in cells.iter().zip(results).enumerate() {
            let metrics = metrics?;
            let row = CellRow {
                cell: i as u64,
                workload: plan.workloads[cell.workload_index].clone(),
                params: plan.params[cell.param_index].name.clone(),
                router: cell.router,
                movement: cell.movement,
                scheduler: cell.scheduler,
                side: cell.side,
                fit: metrics.fit(),
                metrics,
            };
            acc.observe(cell.workload_index, &row);
            sink(&row)?;
        }
        Ok(())
    }

    /// Parses the plan's pass specification into a shared pipeline,
    /// built once per run and cloned (cheaply, via `Arc`) into each
    /// cell. `plan()` already validated the spec, so a failure here
    /// would indicate a grammar drift between the two call sites.
    fn pipeline(&self) -> Result<Option<Arc<PassManager>>, LeqaError> {
        match self.plan.passes.as_deref() {
            None => Ok(None),
            Some(spec) => {
                let pm = PassManager::parse(spec).map_err(|msg| {
                    LeqaError::new(ErrorKind::Invalid, format!("bad passes: {msg}"))
                })?;
                Ok((!pm.is_empty()).then(|| Arc::new(pm)))
            }
        }
    }

    /// One map/compare cell: the QSPR run (and, in compare mode, the
    /// estimate) on this cell's fabric/params/router/movement.
    fn run_map_cell(
        &self,
        cell: &MapCell,
        handle: &ProgramHandle,
        params: &PhysicalParams,
        pipeline: Option<Arc<PassManager>>,
    ) -> Result<CellMetrics, LeqaError> {
        let dims = match FabricDims::new(cell.side, cell.side) {
            Ok(dims) => dims,
            Err(e) => return Err(LeqaError::from(e)),
        };
        let mut mapper = Mapper::with_config(MapperConfig {
            dims,
            params: params.clone(),
            placement: PlacementStrategy::default(),
            router: cell.router,
            movement: cell.movement,
            seed: 0,
        })
        .with_scheduler(cell.scheduler);
        if let Some(pm) = pipeline {
            mapper = mapper.with_passes(pm);
        }
        // A program too large for the cell's fabric is an unfit row, not
        // an error: wide grids legitimately span undersized fabrics.
        let mapped = match mapper.map(handle.qodg()) {
            Ok(result) => Some(result),
            Err(qspr::MapError::FabricTooSmall { .. }) => None,
            Err(other) => return Err(LeqaError::from(other)),
        };
        Ok(match self.plan.mode {
            ExperimentMode::Map => match mapped {
                Some(r) => CellMetrics::Map {
                    latency_us: Some(r.latency.as_f64()),
                    cnot_ops: Some(r.stats.cnot_ops),
                    avg_cnot_distance: Some(r.stats.avg_cnot_distance()),
                    congestion_wait_us: Some(r.stats.congestion_wait.as_f64()),
                    max_channel_load: Some(r.stats.max_channel_load),
                },
                None => CellMetrics::Map {
                    latency_us: None,
                    cnot_ops: None,
                    avg_cnot_distance: None,
                    congestion_wait_us: None,
                    max_channel_load: None,
                },
            },
            ExperimentMode::Compare => {
                let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
                let estimate =
                    Estimator::with_options(dims, params.clone(), *self.session.options())
                        .estimate_with_profile(&profile)
                        .ok();
                let actual_us = mapped.map(|r| r.latency.as_f64());
                let estimated_us = estimate.map(|e| e.latency.as_f64());
                let error_pct = match (actual_us, estimated_us) {
                    (Some(a), Some(e)) if a > 0.0 => Some(100.0 * (e - a).abs() / a),
                    _ => None,
                };
                CellMetrics::Compare {
                    actual_us,
                    estimated_us,
                    error_pct,
                }
            }
            ExperimentMode::Estimate | ExperimentMode::MonteCarlo => {
                unreachable!("estimate and montecarlo cells use their own paths")
            }
        })
    }

    /// Monte Carlo mode: each cell is one seeded defect draw plus a QSPR
    /// run on the defective fabric, fanned out over the worker pool.
    /// Rows are emitted in plan order (density and trial are the two
    /// innermost axes); the per-density yield statistics land on the
    /// summary record.
    fn run_montecarlo(
        &self,
        handles: &[ProgramHandle],
        variant_params: &[PhysicalParams],
        acc: &mut SummaryAccumulator,
        sink: &mut dyn FnMut(&CellRow) -> Result<(), LeqaError>,
    ) -> Result<(), LeqaError> {
        let plan = &self.plan;
        let mc = plan
            .montecarlo
            .as_ref()
            .expect("plan() rejects montecarlo mode without a montecarlo section");

        let mut cells: Vec<McCell> = Vec::with_capacity(plan.cells as usize);
        for wi in 0..plan.workloads.len() {
            for pi in 0..variant_params.len() {
                for &router in &plan.routers {
                    for &movement in &plan.movements {
                        for &scheduler in &plan.schedulers {
                            for &side in &plan.sides {
                                for &density in &mc.densities {
                                    for trial in 0..mc.trials {
                                        let index = cells.len() as u64;
                                        cells.push(McCell {
                                            workload_index: wi,
                                            param_index: pi,
                                            router,
                                            movement,
                                            scheduler,
                                            side,
                                            density,
                                            trial,
                                            seed: SplitMix64::mix(mc.seed, index),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        let pipeline = self.pipeline()?;
        let results: Vec<Result<CellMetrics, LeqaError>> = fan_out(&cells, |c| {
            self.run_mc_cell(
                c,
                &handles[c.workload_index],
                &variant_params[c.param_index],
                pipeline.clone(),
            )
        });

        // Per-density tallies, in spec order: (placed trials, routable
        // trials, latencies of the routable ones).
        let mut tallies: Vec<(u64, u64, Vec<f64>)> = vec![(0, 0, Vec::new()); mc.densities.len()];

        for (i, (cell, metrics)) in cells.iter().zip(results).enumerate() {
            let metrics = metrics?;
            if let CellMetrics::MonteCarlo {
                routable,
                latency_us,
                ..
            } = &metrics
            {
                // Trial is the innermost axis, density the next one out.
                let di = (i / mc.trials as usize) % mc.densities.len();
                let tally = &mut tallies[di];
                if let Some(routable) = routable {
                    tally.0 += 1;
                    if *routable {
                        tally.1 += 1;
                        if let Some(latency) = latency_us {
                            tally.2.push(*latency);
                        }
                    }
                }
            }
            let row = CellRow {
                cell: i as u64,
                workload: plan.workloads[cell.workload_index].clone(),
                params: plan.params[cell.param_index].name.clone(),
                router: cell.router,
                movement: cell.movement,
                scheduler: cell.scheduler,
                side: cell.side,
                fit: metrics.fit(),
                metrics,
            };
            acc.observe(cell.workload_index, &row);
            sink(&row)?;
        }

        acc.montecarlo = Some(montecarlo_summary(&mc.densities, tallies));
        Ok(())
    }

    /// One Monte Carlo trial: draw the seeded defect mask, then map the
    /// program around it. `Unroutable` is a *result* here (a dead
    /// sample), not an error; `FabricTooSmall` (the live area shrank
    /// below the program) is an unfit row, matching map mode.
    fn run_mc_cell(
        &self,
        cell: &McCell,
        handle: &ProgramHandle,
        params: &PhysicalParams,
        pipeline: Option<Arc<PassManager>>,
    ) -> Result<CellMetrics, LeqaError> {
        let dims = FabricDims::new(cell.side, cell.side).map_err(LeqaError::from)?;
        let map = FabricMap::with_random_defects(dims, cell.density, cell.density, cell.seed)
            .map_err(LeqaError::from)?;
        let dead_cells = Some(map.dead_cells());
        let dead_channels = Some(map.dead_channels());
        let mut mapper = Mapper::with_config(MapperConfig {
            dims,
            params: params.clone(),
            placement: PlacementStrategy::default(),
            router: cell.router,
            movement: cell.movement,
            seed: 0,
        })
        .with_scheduler(cell.scheduler)
        .with_fabric_map(Arc::new(map));
        if let Some(pm) = pipeline {
            mapper = mapper.with_passes(pm);
        }
        Ok(match mapper.map(handle.qodg()) {
            Ok(r) => CellMetrics::MonteCarlo {
                density: cell.density,
                trial: cell.trial,
                routable: Some(true),
                latency_us: Some(r.latency.as_f64()),
                congestion_wait_us: Some(r.stats.congestion_wait.as_f64()),
                dead_cells,
                dead_channels,
            },
            Err(qspr::MapError::FabricTooSmall { .. }) => CellMetrics::MonteCarlo {
                density: cell.density,
                trial: cell.trial,
                routable: None,
                latency_us: None,
                congestion_wait_us: None,
                dead_cells,
                dead_channels,
            },
            Err(qspr::MapError::Unroutable { .. }) => CellMetrics::MonteCarlo {
                density: cell.density,
                trial: cell.trial,
                routable: Some(false),
                latency_us: None,
                congestion_wait_us: None,
                dead_cells,
                dead_channels,
            },
            Err(other) => return Err(LeqaError::from(other)),
        })
    }
}

/// Folds the per-density tallies (in spec order, paired with
/// `densities`) into the summary block: Wilson intervals, latency
/// quantiles, and the interpolated critical density with its
/// confidence interval.
fn montecarlo_summary(densities: &[f64], tallies: Vec<(u64, u64, Vec<f64>)>) -> MonteCarloSummary {
    let mut stats: Vec<DensityStats> = densities
        .iter()
        .zip(tallies)
        .map(|(&density, (trials, routable, mut latencies))| {
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            let interval = wilson_interval(routable, trials);
            DensityStats {
                density,
                trials,
                routable,
                routability: (trials > 0).then(|| routable as f64 / trials as f64),
                ci_low: interval.map(|(lo, _)| lo),
                ci_high: interval.map(|(_, hi)| hi),
                p50_latency_us: quantile(&latencies, 0.5),
                p90_latency_us: quantile(&latencies, 0.9),
            }
        })
        .collect();
    stats.sort_by(|a, b| {
        a.density
            .partial_cmp(&b.density)
            .expect("plan() rejects non-finite densities")
    });

    let rate: Vec<(f64, Option<f64>)> = stats.iter().map(|s| (s.density, s.routability)).collect();
    let low: Vec<(f64, Option<f64>)> = stats.iter().map(|s| (s.density, s.ci_low)).collect();
    let high: Vec<(f64, Option<f64>)> = stats.iter().map(|s| (s.density, s.ci_high)).collect();

    let critical_density = crossing_density(&rate);
    // Routability falls with density, so the pessimistic (Wilson-lower)
    // curve crosses 0.5 at a smaller density than the optimistic one;
    // a bound curve that never crosses clamps to the swept range.
    let (critical_ci_low, critical_ci_high) = match (critical_density, stats.first(), stats.last())
    {
        (Some(_), Some(first), Some(last)) => (
            Some(crossing_density(&low).unwrap_or(first.density)),
            Some(crossing_density(&high).unwrap_or(last.density)),
        ),
        _ => (None, None),
    };

    MonteCarloSummary {
        densities: stats,
        critical_density,
        critical_ci_low,
        critical_ci_high,
    }
}

/// Builds an estimate-mode row from a sweep point.
fn estimate_row(
    cell: u64,
    workload: &str,
    params: &str,
    router: RouterStrategy,
    movement: MovementModel,
    scheduler: SchedulerStrategy,
    point: &SweepPoint,
) -> CellRow {
    let metrics = match &point.estimate {
        Some(e) => CellMetrics::Estimate {
            latency_us: Some(e.latency.as_f64()),
            l_cnot_avg_us: Some(e.l_cnot_avg.as_f64()),
            d_uncong_us: Some(e.d_uncong.as_f64()),
            avg_zone_area: Some(e.avg_zone_area),
            zone_side: Some(e.zone_side),
            critical_cnots: Some(e.critical.cnot_count),
        },
        None => CellMetrics::Estimate {
            latency_us: None,
            l_cnot_avg_us: None,
            d_uncong_us: None,
            avg_zone_area: None,
            zone_side: None,
            critical_cnots: None,
        },
    };
    CellRow {
        cell,
        workload: workload.to_string(),
        params: params.to_string(),
        router,
        movement,
        scheduler,
        side: point.dims.width(),
        fit: metrics.fit(),
        metrics,
    }
}

impl Session {
    /// Runs a declarative experiment and collects every row plus the
    /// summary — the batch endpoint over the streaming
    /// [`ExperimentRunner`].
    ///
    /// # Errors
    ///
    /// Spec validation errors ([`ErrorKind::Invalid`] /
    /// [`ErrorKind::Usage`]), load errors, or parameter-override errors.
    /// Cells whose program merely does not fit yield `fit: false` rows,
    /// not errors.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn batch_experiment(&self, spec: &ScenarioSpec) -> Result<ExperimentResponse, LeqaError> {
        let runner = ExperimentRunner::new(self, spec)?;
        let mut rows = Vec::with_capacity(runner.plan().cells as usize);
        let summary = runner.run(&mut |row| {
            rows.push(row.clone());
            Ok(())
        })?;
        Ok(ExperimentResponse {
            mode: spec.mode,
            select: spec.select,
            rows,
            summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn spec_3x4() -> ScenarioSpec {
        ScenarioSpec::new(
            ["qft_8", "random_8_40_7"],
            [
                FabricEntry::Side(10),
                FabricEntry::Range {
                    min: 20,
                    max: 40,
                    step: 10,
                },
            ],
        )
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = spec_3x4()
            .with_routers([RouterStrategy::Xy, RouterStrategy::Yx])
            .with_movements([MovementModel::HomeBased, MovementModel::Drift])
            .with_params([
                ParamVariant::base("default"),
                ParamVariant::base("fast")
                    .with_t_move_us(50.0)
                    .with_qubit_speed(0.002)
                    .with_channel_capacity(8),
            ])
            .with_mode(ExperimentMode::Compare)
            .with_select(ResultSelect::Latency)
            .with_filter(AxisFilter {
                workloads: Some("qft".into()),
                min_side: Some(10),
                max_side: Some(30),
                max_cells: Some(1000),
            });
        let back = ScenarioSpec::from_json(&parse(&spec.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_wire_spec_defaults_every_optional_axis() {
        let doc = parse(
            r#"{"schema_version":1,"op":"experiment",
                "workloads":["qft_8"],"fabrics":[10,{"min":20,"max":30,"step":5}]}"#,
        )
        .unwrap();
        let spec = ScenarioSpec::from_json(&doc).unwrap();
        assert_eq!(spec.params, vec![ParamVariant::base("default")]);
        assert_eq!(spec.routers, vec![RouterStrategy::Xy]);
        assert_eq!(spec.movements, vec![MovementModel::HomeBased]);
        assert_eq!(spec.mode, ExperimentMode::Estimate);
        assert_eq!(spec.select, ResultSelect::Full);
        assert!(spec.filter.is_empty());
        let plan = spec.plan().unwrap();
        assert_eq!(plan.sides, vec![10, 20, 25, 30]);
        assert_eq!(plan.cells, 4);
    }

    #[test]
    fn plan_expands_and_dedupes_overlapping_ranges() {
        let spec = ScenarioSpec::new(
            ["qft_8"],
            [
                FabricEntry::Range {
                    min: 10,
                    max: 30,
                    step: 10,
                },
                FabricEntry::Range {
                    min: 20,
                    max: 50,
                    step: 10,
                },
                FabricEntry::Side(30),
            ],
        );
        let plan = spec.plan().unwrap();
        assert_eq!(plan.sides, vec![10, 20, 30, 40, 50]);
        assert_eq!(plan.cells, 5);
    }

    #[test]
    fn plan_rejects_empty_and_malformed_axes() {
        let empty_workloads = ScenarioSpec::new(Vec::<String>::new(), [FabricEntry::Side(10)]);
        assert_eq!(
            empty_workloads.plan().unwrap_err().kind(),
            ErrorKind::Invalid
        );

        let empty_fabrics = ScenarioSpec::new(["qft_8"], []);
        assert_eq!(empty_fabrics.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let bad_range = ScenarioSpec::new(
            ["qft_8"],
            [FabricEntry::Range {
                min: 30,
                max: 10,
                step: 5,
            }],
        );
        let err = bad_range.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("min > max"), "{err}");

        let zero_step = ScenarioSpec::new(
            ["qft_8"],
            [FabricEntry::Range {
                min: 10,
                max: 30,
                step: 0,
            }],
        );
        assert_eq!(zero_step.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let zero_side = ScenarioSpec::new(["qft_8"], [FabricEntry::Side(0)]);
        assert_eq!(zero_side.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let no_routers = spec_3x4().with_routers([]);
        assert_eq!(no_routers.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let no_movements = spec_3x4().with_movements([]);
        assert_eq!(no_movements.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let no_params = spec_3x4().with_params([]);
        assert_eq!(no_params.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let dup_params = spec_3x4().with_params([
            ParamVariant::base("same"),
            ParamVariant::base("same").with_t_move_us(5.0),
        ]);
        assert_eq!(dup_params.plan().unwrap_err().kind(), ErrorKind::Invalid);
    }

    #[test]
    fn plan_rejects_unknown_workloads_as_usage_errors() {
        let spec = ScenarioSpec::new(["qft_8", "frobnicate"], [FabricEntry::Side(10)]);
        let err = spec.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn filters_trim_both_axes_and_guard_cell_counts() {
        let spec = ScenarioSpec::new(
            ["qft_8", "random_8_40_7"],
            [FabricEntry::Range {
                min: 10,
                max: 60,
                step: 10,
            }],
        )
        .with_filter(AxisFilter {
            workloads: Some("qft".into()),
            min_side: Some(20),
            max_side: Some(50),
            max_cells: None,
        });
        let plan = spec.plan().unwrap();
        assert_eq!(plan.workloads, vec!["qft_8".to_string()]);
        assert_eq!(plan.sides, vec![20, 30, 40, 50]);
        assert_eq!(plan.cells, 4);

        let guarded = spec.with_filter(AxisFilter {
            max_cells: Some(3),
            ..AxisFilter::default()
        });
        let err = guarded.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("max_cells"), "{err}");

        let all_filtered =
            ScenarioSpec::new(["qft_8"], [FabricEntry::Side(10)]).with_filter(AxisFilter {
                workloads: Some("zzz".into()),
                ..AxisFilter::default()
            });
        assert_eq!(all_filtered.plan().unwrap_err().kind(), ErrorKind::Invalid);

        let no_sides =
            ScenarioSpec::new(["qft_8"], [FabricEntry::Side(10)]).with_filter(AxisFilter {
                min_side: Some(20),
                ..AxisFilter::default()
            });
        assert_eq!(no_sides.plan().unwrap_err().kind(), ErrorKind::Invalid);
    }

    #[test]
    fn pathological_ranges_are_rejected_arithmetically() {
        // The side cap must fire from the O(#entries) pre-check — before
        // anything is materialized — even with no max_cells guard set,
        // and a name like `qft_100000000` must be validated without
        // generating the circuit. Either regression would turn this
        // test from microseconds into a hang/OOM.
        let spec = ScenarioSpec::new(
            ["qft_100000000"],
            [FabricEntry::Range {
                min: 1,
                max: 100_000_000,
                step: 1,
            }],
        );
        let err = spec.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("candidate sides"), "{err}");

        // Side filters count arithmetically too: the same huge range
        // narrowed to a handful of sides passes the cap.
        let narrowed = ScenarioSpec::new(
            ["qft_8"],
            [FabricEntry::Range {
                min: 1,
                max: 100_000_000,
                step: 1,
            }],
        )
        .with_filter(AxisFilter {
            min_side: Some(10),
            max_side: Some(12),
            ..AxisFilter::default()
        });
        assert_eq!(narrowed.plan().unwrap().sides, vec![10, 11, 12]);
    }

    #[test]
    fn max_cells_guard_fires_during_expansion() {
        let spec = ScenarioSpec::new(
            ["qft_8"],
            [FabricEntry::Range {
                min: 1,
                max: 1000,
                step: 1,
            }],
        )
        .with_filter(AxisFilter {
            max_cells: Some(64),
            ..AxisFilter::default()
        });
        let err = spec.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("max_cells"), "{err}");
    }

    #[test]
    fn side_filters_apply_before_the_max_cells_guard() {
        // A wide range narrowed by side bounds counts only surviving
        // sides against the guard.
        let spec = ScenarioSpec::new(
            ["qft_8"],
            [FabricEntry::Range {
                min: 10,
                max: 1000,
                step: 1,
            }],
        )
        .with_filter(AxisFilter {
            min_side: Some(20),
            max_side: Some(22),
            max_cells: Some(3),
            ..AxisFilter::default()
        });
        let plan = spec.plan().unwrap();
        assert_eq!(plan.sides, vec![20, 21, 22]);
        assert_eq!(plan.cells, 3);
    }

    #[test]
    fn single_cell_grid_runs_and_matches_estimate() {
        let session = Session::builder().build().unwrap();
        let spec = ScenarioSpec::new(["qft_8"], [FabricEntry::Side(20)]);
        let response = session.batch_experiment(&spec).unwrap();
        assert_eq!(response.rows.len(), 1);
        let row = &response.rows[0];
        assert!(row.fit);
        let direct = session
            .estimate(&crate::EstimateRequest::new(ProgramSpec::bench("qft_8")).with_fabric(20, 20))
            .unwrap();
        assert_eq!(row.metrics.primary_latency_us(), Some(direct.latency_us));
        assert_eq!(response.summary.cells, 1);
        assert_eq!(response.summary.fit_cells, 1);
        assert_eq!(response.summary.workloads[0].argmin_side, Some(20));
    }

    #[test]
    fn unfit_cells_are_rows_not_errors() {
        let session = Session::builder().build().unwrap();
        // ham15 has 146 qubits: a 10x10 fabric cannot hold it.
        let spec = ScenarioSpec::new(["ham15"], [FabricEntry::Side(10), FabricEntry::Side(60)]);
        let response = session.batch_experiment(&spec).unwrap();
        assert_eq!(response.rows.len(), 2);
        assert!(!response.rows[0].fit);
        assert!(response.rows[1].fit);
        assert_eq!(response.summary.fit_cells, 1);
        assert_eq!(response.summary.workloads[0].argmin_side, Some(60));
    }

    #[test]
    fn rows_and_summary_round_trip_through_json() {
        let session = Session::builder().build().unwrap();
        let spec = spec_3x4().with_routers([RouterStrategy::Xy, RouterStrategy::Yx]);
        let response = session.batch_experiment(&spec).unwrap();
        let back =
            ExperimentResponse::from_json(&parse(&response.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, response);

        // Latency-selected rows drop fields; decode restores them as None.
        let thin = session
            .batch_experiment(&spec_3x4().with_select(ResultSelect::Latency))
            .unwrap();
        let back =
            ExperimentResponse::from_json(&parse(&thin.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back.rows.len(), thin.rows.len());
        for row in &back.rows {
            if let CellMetrics::Estimate { l_cnot_avg_us, .. } = &row.metrics {
                assert_eq!(*l_cnot_avg_us, None);
            } else {
                panic!("estimate metrics expected");
            }
        }
    }

    #[test]
    fn ndjson_row_keys_are_stable() {
        let session = Session::builder().build().unwrap();
        let spec = ScenarioSpec::new(["qft_8"], [FabricEntry::Side(20)]);
        let response = session.batch_experiment(&spec).unwrap();
        let mut out = Vec::new();
        write_ndjson(&response, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        let row = lines.next().unwrap();
        assert!(
            row.starts_with(
                "{\"schema_version\":1,\"op\":\"experiment_cell\",\"cell\":0,\
                 \"workload\":\"qft_8\",\"params\":\"default\",\"router\":\"xy\",\
                 \"movement\":\"home\",\"scheduler\":\"greedy\",\"side\":20,\
                 \"fit\":true,\"latency_us\":"
            ),
            "{row}"
        );
        let summary = lines.next().unwrap();
        assert!(
            summary.starts_with("{\"schema_version\":1,\"op\":\"experiment_summary\","),
            "{summary}"
        );
        assert!(lines.next().is_none());
    }

    #[test]
    fn map_mode_honours_router_axis() {
        let session = Session::builder().build().unwrap();
        let spec = ScenarioSpec::new(["random_8_40_7"], [FabricEntry::Side(8)])
            .with_mode(ExperimentMode::Map)
            .with_routers([RouterStrategy::Xy, RouterStrategy::Yx]);
        let response = session.batch_experiment(&spec).unwrap();
        assert_eq!(response.rows.len(), 2);
        assert_eq!(response.rows[0].router, RouterStrategy::Xy);
        assert_eq!(response.rows[1].router, RouterStrategy::Yx);
        for row in &response.rows {
            assert!(row.fit);
            let CellMetrics::Map { latency_us, .. } = &row.metrics else {
                panic!("map metrics expected");
            };
            assert!(latency_us.unwrap() > 0.0);
        }
    }

    #[test]
    fn compare_mode_reports_both_latencies() {
        let session = Session::builder().build().unwrap();
        let spec = ScenarioSpec::new(["random_8_40_7"], [FabricEntry::Side(8)])
            .with_mode(ExperimentMode::Compare);
        let response = session.batch_experiment(&spec).unwrap();
        let CellMetrics::Compare {
            actual_us,
            estimated_us,
            error_pct,
        } = &response.rows[0].metrics
        else {
            panic!("compare metrics expected");
        };
        assert!(actual_us.unwrap() > 0.0);
        assert!(estimated_us.unwrap() > 0.0);
        assert!(error_pct.unwrap() >= 0.0);
    }

    #[test]
    fn bad_param_overrides_fail_before_any_cell_runs() {
        let session = Session::builder().build().unwrap();
        let spec =
            spec_3x4().with_params([ParamVariant::base("broken").with_qubit_speed(f64::NAN)]);
        let err = session.batch_experiment(&spec).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("broken"), "{err}");
    }

    #[test]
    fn experiment_warms_the_shared_cache_exactly_once_per_program() {
        let session = Session::builder().build().unwrap();
        let spec = spec_3x4();
        let first = session.batch_experiment(&spec).unwrap();
        assert_eq!(first.summary.cache.cache_misses, 2);
        assert_eq!(first.summary.cache.profile_builds, 2);
        // Re-running the same spec hits the cache for every program.
        let second = session.batch_experiment(&spec).unwrap();
        assert_eq!(second.summary.cache.cache_misses, 0);
        assert_eq!(second.summary.cache.cache_hits, 2);
        assert_eq!(second.summary.cache.profile_builds, 0);
        // The measurements themselves are unchanged.
        assert_eq!(first.rows, second.rows);
    }

    // ── Monte Carlo mode ─────────────────────────────────────────────

    fn mc_spec(densities: impl IntoIterator<Item = f64>, trials: u32) -> ScenarioSpec {
        ScenarioSpec::new(["qft_8"], [FabricEntry::Side(8)])
            .with_montecarlo(MonteCarloSpec::new(densities, trials, 7))
    }

    #[test]
    fn montecarlo_spec_round_trips_through_json() {
        let spec = mc_spec([0.0, 0.1, 0.25], 4);
        assert_eq!(spec.mode, ExperimentMode::MonteCarlo);
        let back = ScenarioSpec::from_json(&parse(&spec.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn montecarlo_plan_multiplies_the_trial_axes() {
        let plan = mc_spec([0.0, 0.1, 0.25], 4).plan().unwrap();
        assert_eq!(plan.cells, 12); // 1 workload × 1 side × 3 densities × 4 trials
        assert_eq!(plan.montecarlo.as_ref().unwrap().trials, 4);
    }

    #[test]
    fn montecarlo_plan_rejects_malformed_sections() {
        // montecarlo mode without the section.
        let spec = ScenarioSpec::new(["qft_8"], [FabricEntry::Side(8)])
            .with_mode(ExperimentMode::MonteCarlo);
        let err = spec.plan().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("montecarlo"), "{err}");

        // The section without montecarlo mode.
        let mut spec = mc_spec([0.1], 2);
        spec.mode = ExperimentMode::Map;
        assert_eq!(spec.plan().unwrap_err().kind(), ErrorKind::Invalid);

        // Out-of-range, non-finite, and empty densities; zero trials.
        for bad in [
            mc_spec([1.5], 2),
            mc_spec([-0.1], 2),
            mc_spec([f64::NAN], 2),
            mc_spec(Vec::new(), 2),
            mc_spec([0.1], 0),
        ] {
            assert_eq!(bad.plan().unwrap_err().kind(), ErrorKind::Invalid);
        }
    }

    #[test]
    fn zero_density_trials_match_plain_map_mode() {
        // Density 0 draws a pristine mask: every trial must reproduce
        // the defect-free map-mode latency bit for bit.
        let session = Session::builder().build().unwrap();
        let mc = session.batch_experiment(&mc_spec([0.0], 3)).unwrap();
        let map = session
            .batch_experiment(
                &ScenarioSpec::new(["qft_8"], [FabricEntry::Side(8)])
                    .with_mode(ExperimentMode::Map),
            )
            .unwrap();
        let CellMetrics::Map { latency_us, .. } = &map.rows[0].metrics else {
            panic!("map metrics expected");
        };
        let baseline = latency_us.unwrap();
        assert_eq!(mc.rows.len(), 3);
        for row in &mc.rows {
            let CellMetrics::MonteCarlo {
                routable,
                latency_us,
                dead_cells,
                dead_channels,
                ..
            } = &row.metrics
            else {
                panic!("montecarlo metrics expected");
            };
            assert_eq!(*routable, Some(true));
            assert_eq!(*dead_cells, Some(0));
            assert_eq!(*dead_channels, Some(0));
            assert_eq!(latency_us.unwrap().to_bits(), baseline.to_bits());
        }
        let mc_summary = mc.summary.montecarlo.as_ref().unwrap();
        assert_eq!(mc_summary.densities[0].routability, Some(1.0));
        assert_eq!(mc_summary.critical_density, None); // never crosses 0.5
    }

    #[test]
    fn montecarlo_runs_report_yield_statistics() {
        let session = Session::builder().build().unwrap();
        let response = session
            .batch_experiment(&mc_spec([0.0, 0.15, 0.45], 6))
            .unwrap();
        assert_eq!(response.rows.len(), 18);
        let mc = response.summary.montecarlo.as_ref().unwrap();
        assert_eq!(mc.densities.len(), 3);
        // Sorted ascending, each with a Wilson interval around its rate.
        for pair in mc.densities.windows(2) {
            assert!(pair[0].density < pair[1].density);
        }
        for d in &mc.densities {
            assert!(d.trials <= 6); // placed trials never exceed the sweep
            assert!(d.routable <= d.trials);
            if let (Some(rate), Some(lo), Some(hi)) = (d.routability, d.ci_low, d.ci_high) {
                assert!((0.0..=1.0).contains(&rate));
                assert!(lo <= rate && rate <= hi, "{lo} ≤ {rate} ≤ {hi}");
            }
        }
        // The pristine end of the sweep is fully routable.
        assert_eq!(mc.densities[0].routability, Some(1.0));
        assert!(mc.densities[0].p50_latency_us.unwrap() > 0.0);
        // Yield cannot improve as defects are added (seeded, so stable).
        let rates: Vec<f64> = mc.densities.iter().filter_map(|d| d.routability).collect();
        for pair in rates.windows(2) {
            assert!(
                pair[0] >= pair[1],
                "routability rose with density: {rates:?}"
            );
        }

        // The whole response (MC rows + summary block) round-trips.
        let back =
            ExperimentResponse::from_json(&parse(&response.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn montecarlo_ndjson_rows_have_stable_prefixes() {
        let session = Session::builder().build().unwrap();
        let response = session.batch_experiment(&mc_spec([0.0], 1)).unwrap();
        let mut out = Vec::new();
        write_ndjson(&response, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let row = text.lines().next().unwrap();
        assert!(
            row.starts_with(
                "{\"schema_version\":1,\"op\":\"experiment_cell\",\"cell\":0,\
                 \"workload\":\"qft_8\",\"params\":\"default\",\"router\":\"xy\",\
                 \"movement\":\"home\",\"scheduler\":\"greedy\",\"side\":8,\
                 \"fit\":true,\"density\":0,\"trial\":0,\"routable\":true,\
                 \"latency_us\":"
            ),
            "{row}"
        );
        let summary = text.lines().last().unwrap();
        assert!(
            summary.contains("\"montecarlo\":{\"densities\":["),
            "{summary}"
        );
        assert!(summary.contains("\"critical_density\":"), "{summary}");
    }

    #[test]
    fn wilson_interval_brackets_the_rate_and_degrades_gracefully() {
        assert_eq!(wilson_interval(1, 0), None);
        let (lo, hi) = wilson_interval(8, 10).unwrap();
        assert!(lo < 0.8 && 0.8 < hi);
        let (lo, hi) = wilson_interval(0, 10).unwrap();
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.5); // zero successes still admit doubt
        let (lo, hi) = wilson_interval(10, 10).unwrap();
        assert!(lo > 0.5 && lo < 1.0);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[3.0], 0.9), Some(3.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), Some(2.5));
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 0.0), Some(1.0));
        assert_eq!(quantile(&[1.0, 2.0, 3.0], 1.0), Some(3.0));
    }

    #[test]
    fn critical_density_interpolates_the_half_yield_crossing() {
        // Rate falls 1.0 → 0.25 between densities 0.2 and 0.4: the 0.5
        // crossing sits two-thirds of the way across the bracket.
        let points = [(0.0, Some(1.0)), (0.2, Some(1.0)), (0.4, Some(0.25))];
        let crit = crossing_density(&points).unwrap();
        assert!((crit - (0.2 + (0.5 / 0.75) * 0.2)).abs() < 1e-12, "{crit}");

        // Unplaced densities are skipped, not treated as zero yield.
        let gappy = [(0.0, Some(1.0)), (0.2, None), (0.4, Some(0.0))];
        let crit = crossing_density(&gappy).unwrap();
        assert!((crit - 0.2).abs() < 1e-12, "{crit}");

        // No crossing when the sweep never drops below half.
        assert_eq!(
            crossing_density(&[(0.0, Some(1.0)), (0.5, Some(0.9))]),
            None
        );
    }

    #[test]
    fn montecarlo_summary_clamps_the_confidence_interval_to_the_sweep() {
        // One routable trial out of two at every density: the rate
        // curve never crosses 0.5 cleanly... craft tallies instead so
        // the crossing exists but the Wilson bounds straddle the range.
        let densities = [0.0, 0.3];
        let tallies = vec![(4, 4, vec![1.0, 2.0, 3.0, 4.0]), (4, 0, Vec::new())];
        let mc = montecarlo_summary(&densities, tallies);
        let crit = mc.critical_density.unwrap();
        assert!(0.0 < crit && crit < 0.3, "{crit}");
        let lo = mc.critical_ci_low.unwrap();
        let hi = mc.critical_ci_high.unwrap();
        assert!((0.0..=crit).contains(&lo), "{lo}");
        assert!((crit..=0.3).contains(&hi), "{hi}");
        assert_eq!(mc.densities[0].p50_latency_us, Some(2.5));
        assert_eq!(mc.densities[0].p90_latency_us, Some(3.7));
    }
}
