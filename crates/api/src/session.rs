//! The [`Session`]: one configured service instance.
//!
//! A session owns the fabric dimensions, physical parameters and estimator
//! options (set once through [`SessionBuilder`]) and a program cache:
//! every loaded program is keyed by a content hash of its canonical
//! circuit text, and its [`ProfileData`] — the expensive program-dependent
//! half of Algorithm 1 — is computed exactly once no matter how many
//! requests name it, through whichever [`ProgramSpec`] source.
//!
//! # Concurrency model
//!
//! `Session` is `Send + Sync` and every endpoint takes `&self`, so one
//! session can be shared across threads (`Arc<Session>` or a plain
//! borrow) and hammered concurrently. The program cache is sharded: 16
//! independent `RwLock`-protected maps selected by the FNV content hash,
//! so concurrent loads of *different* programs never contend on one lock
//! and repeat loads of the *same* program take only a shard read lock.
//! Cache counters ([`CacheStats`]) are atomics with the invariant
//! `cache_hits + cache_misses == loads`; profiles stay exactly-once via
//! `OnceLock` no matter how many threads race on a program.
//!
//! The [`batch`](Session::batch) endpoint resolves every request's
//! program text first, dedups by content hash, warms the *distinct*
//! programs concurrently (on the persistent worker pool when the
//! `parallel` feature is on), then fans the per-request execution out —
//! with hit/miss accounting and `profile_cached` flags bit-identical to
//! the serial request-by-request order.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use leqa::report::zone_report_from_iig;
use leqa::sweep::sweep_profile_squares;
use leqa::{Estimator, EstimatorOptions, ProfileData, ProgramProfile, StreamingProfileBuilder};
use leqa_circuit::{decompose::lower_to_ft, parser, Circuit, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::shor::ShorStream;
use qspr::{Mapper, MapperConfig, PassManager};

use crate::dto::{
    CompareRequest, CompareResponse, EstimateRequest, EstimateResponse, FabricSpec, MapRequest,
    MapResponse, ProgramSpec, ProgramSummary, Request, Response, SweepPointDto, SweepRequest,
    SweepResponse, ZoneRowDto, ZonesRequest, ZonesResponse,
};
use crate::error::{ErrorKind, LeqaError};
use crate::store::ProfileStore;
use crate::BatchResponse;

/// The cached, spec-independent part of a loaded program: canonical
/// source, lowered QODG, and the lazily-computed [`ProfileData`]. Shared
/// (via `Arc`) by every request whose content hashes to it.
#[derive(Debug)]
struct ProgramData {
    source: String,
    qodg: Qodg,
    /// Computed on first use by an endpoint that needs it (estimate,
    /// sweep, zones, compare, `dot --graph iig`) — `map` and `gen` never
    /// pay the IIG/zone passes. `OnceLock` guarantees exactly one
    /// initialization even when threads race on the same program.
    profile: OnceLock<ProfileData>,
}

/// A generator-backed program on the streaming path: the session never
/// materializes its op list or QODG. Cached by canonical stream name; the
/// profile is computed once per session (or loaded from the snapshot
/// store under a `stream:`-prefixed pseudo-source), exactly like
/// materialized programs.
#[derive(Debug)]
struct StreamedProgram {
    stream: ShorStream,
    profile: OnceLock<ProfileData>,
}

/// A loaded program as one request sees it: the label the *request's*
/// spec implies plus the shared, content-addressed program data (source,
/// QODG, lazy profile). Cheap to move around (a string and two `Arc`s).
#[derive(Debug)]
pub struct ProgramHandle {
    label: String,
    shared: Arc<ProgramData>,
    counters: Arc<Counters>,
    store: Option<Arc<ProfileStore>>,
}

impl ProgramHandle {
    /// Display label (benchmark name, `.name` header, or file path) —
    /// derived from the spec *this* load used, not from whichever spec
    /// first populated the cache.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Canonical circuit text (the content that was hashed).
    #[must_use]
    pub fn source(&self) -> &str {
        &self.shared.source
    }

    /// The lowered program.
    #[must_use]
    pub fn qodg(&self) -> &Qodg {
        &self.shared.qodg
    }

    /// The program profile data, computed on first use and cached for
    /// every later request naming the same content.
    ///
    /// When the session has a snapshot store ([`SessionBuilder::cache_dir`])
    /// the first use consults it before computing: a verified snapshot
    /// skips the profile passes entirely (`store_hits`), while a missing,
    /// corrupt or stale snapshot is silently recomputed and re-saved
    /// (`store_misses`) — never a crash, never wrong bytes.
    #[must_use]
    pub fn profile_data(&self) -> &ProfileData {
        self.shared.profile.get_or_init(|| {
            if let Some(store) = &self.store {
                match store.load(&self.shared.source) {
                    Ok(data) => {
                        self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                        return data;
                    }
                    Err(_) => {
                        // Missing, corrupt or stale: recompute below and
                        // overwrite the snapshot.
                        self.counters.store_misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.counters.profile_builds.fetch_add(1, Ordering::Relaxed);
            let data = ProfileData::new(&self.shared.qodg);
            if let Some(store) = &self.store {
                // Best-effort: a failed save costs the next restart a
                // rebuild, never this request.
                let _ = store.save(&self.shared.source, &data);
            }
            data
        })
    }

    /// The identity echoed in responses.
    #[must_use]
    pub fn summary(&self) -> ProgramSummary {
        ProgramSummary {
            label: self.label.clone(),
            qubits: u64::from(self.shared.qodg.num_qubits()),
            ops: self.shared.qodg.op_count() as u64,
        }
    }
}

/// Cache counters, exposed for observability and asserted by the
/// profile-reuse and concurrency tests. At quiescence
/// `cache_hits + cache_misses == loads`; a snapshot racing in-flight
/// loads may transiently *under*-count `cache_hits + cache_misses`
/// relative to `loads` (never the reverse — see
/// [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Programs whose [`ProfileData`] was computed (one per distinct
    /// content hash).
    pub profile_builds: u64,
    /// Loads served from the cache without re-lowering.
    pub cache_hits: u64,
    /// Loads that lowered and inserted a program (one per distinct
    /// content hash, plus hash-collision rebuilds).
    pub cache_misses: u64,
    /// Successful program loads (`cache_hits + cache_misses`).
    pub loads: u64,
}

/// Snapshot-store counters, exposed for observability and asserted by
/// the warm-restart tests: `store_hits` counts profiles served from a
/// verified on-disk snapshot (skipping the profile passes entirely),
/// `store_misses` counts first-use profiles the store could *not* serve
/// — missing, corrupt or stale snapshots alike — which were recomputed
/// and re-saved. Both stay zero on sessions without a
/// [`SessionBuilder::cache_dir`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreStats {
    /// Profiles loaded from a verified snapshot.
    pub store_hits: u64,
    /// Profiles the store could not serve (recomputed and re-saved).
    pub store_misses: u64,
}

/// The session's atomic counters, shared with every [`ProgramHandle`] so
/// lazy profile computation counts no matter which handle forces it.
#[derive(Debug, Default)]
struct Counters {
    profile_builds: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    loads: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
}

impl Counters {
    // `loads` is bumped (release) before the hit/miss half, and
    // `Session::cache_stats` reads the halves (acquire) before `loads`:
    // any half increment a snapshot observes carries its `loads`
    // increment with it, so a racing snapshot can only ever see
    // `hits + misses <= loads`, never a sum exceeding the loads it was
    // read against.

    fn record_hit(&self) {
        self.loads.fetch_add(1, Ordering::Release);
        self.hits.fetch_add(1, Ordering::Release);
    }

    fn record_miss(&self) {
        self.loads.fetch_add(1, Ordering::Release);
        self.misses.fetch_add(1, Ordering::Release);
    }
}

/// Maps over the slice on the worker pool under `parallel`, serially
/// otherwise (results identical by the pool's contract) — the one
/// fan-out dispatcher shared by `batch` and the experiment engine.
pub(crate) fn fan_out<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    #[cfg(feature = "parallel")]
    {
        leqa::exec::parallel_map(items, f)
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.iter().map(f).collect()
    }
}

/// Shard count of the program cache. 16 keeps the footprint trivial
/// while making same-shard contention between distinct hot programs
/// unlikely at service concurrency levels.
const SHARD_COUNT: usize = 16;

/// The sharded program cache: `SHARD_COUNT` independent `RwLock`-guarded
/// maps, selected by the FNV-1a content hash, so concurrent loads only
/// contend when they actually touch the same shard.
#[derive(Debug, Default)]
struct ShardedCache {
    shards: [RwLock<HashMap<u64, Arc<ProgramData>>>; SHARD_COUNT],
}

impl ShardedCache {
    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Arc<ProgramData>>> {
        &self.shards[(key % SHARD_COUNT as u64) as usize]
    }

    /// Fetches the entry for `key` if present *and* its source matches
    /// (a 64-bit collision must repeat work, not hand a request some
    /// other program's profile).
    fn lookup(&self, key: u64, source: &str) -> Option<Arc<ProgramData>> {
        let shard = self.shard(key).read().expect("no poisoning");
        shard
            .get(&key)
            .filter(|shared| shared.source == source)
            .map(Arc::clone)
    }

    /// Inserts `candidate` under `key`, unless a matching entry appeared
    /// in the meantime (another thread won the race) — then the existing
    /// entry is adopted. Returns the canonical `Arc` and whether the
    /// candidate was freshly inserted.
    fn insert(&self, key: u64, candidate: Arc<ProgramData>) -> (Arc<ProgramData>, bool) {
        let mut shard = self.shard(key).write().expect("no poisoning");
        match shard.entry(key) {
            Entry::Occupied(mut existing) => {
                if existing.get().source == candidate.source {
                    (Arc::clone(existing.get()), false)
                } else {
                    // Hash collision: the newcomer takes the slot (the
                    // verify-on-hit lookup keeps either resident correct,
                    // a collision only ever costs rebuilds).
                    existing.insert(Arc::clone(&candidate));
                    (candidate, true)
                }
            }
            Entry::Vacant(slot) => {
                slot.insert(Arc::clone(&candidate));
                (candidate, true)
            }
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("no poisoning").clear();
        }
    }
}

/// Builds a [`Session`].
///
/// Defaults mirror the paper: 60×60 fabric, Table 1 ion-trap/\[\[7,1,3\]\]
/// parameters, 20 `E[S_q]` terms with ceiling zone rounding.
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until `build()` is called"]
pub struct SessionBuilder {
    fabric: Option<FabricDims>,
    params: Option<PhysicalParams>,
    options: Option<EstimatorOptions>,
    cache_dir: Option<std::path::PathBuf>,
    streaming_threshold: Option<u64>,
}

/// Default op-count threshold above which [`Session::estimate`] switches
/// generator-backed workloads to the streaming pipeline: one million
/// lowered ops is roughly where materializing the QODG starts to dominate
/// a request's memory footprint while the streamed answer stays
/// bit-identical.
pub const DEFAULT_STREAMING_THRESHOLD: u64 = 1_000_000;

impl SessionBuilder {
    /// Sets the session fabric (default: the paper's 60×60).
    pub fn fabric(mut self, dims: FabricDims) -> Self {
        self.fabric = Some(dims);
        self
    }

    /// Sets the physical parameters (default: Table 1's).
    pub fn params(mut self, params: PhysicalParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Sets the estimator options (default: the paper's).
    pub fn options(mut self, options: EstimatorOptions) -> Self {
        self.options = Some(options);
        self
    }

    /// Enables the disk-backed profile snapshot store rooted at `dir`
    /// (created if absent): first-use profiles are loaded from verified
    /// snapshots when possible and persisted otherwise, so a restarted
    /// process comes up warm. See [`crate::store`] for the codec and
    /// the corruption discipline.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the op-count threshold at which [`Session::estimate`] routes
    /// generator-backed workloads (currently the `shor_N` family) through
    /// the memory-bounded streaming pipeline instead of materializing
    /// them (default: [`DEFAULT_STREAMING_THRESHOLD`]). Streamed
    /// estimates are bit-identical to materialized ones; only the memory
    /// profile changes. `0` streams every streamable workload,
    /// `u64::MAX` effectively disables streaming.
    pub fn streaming_threshold(mut self, ops: u64) -> Self {
        self.streaming_threshold = Some(ops);
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Invalid`] when the estimator options are out
    /// of range (currently: zero `E[S_q]` terms), or [`ErrorKind::Io`]
    /// when a [`cache_dir`](Self::cache_dir) cannot be created.
    pub fn build(self) -> Result<Session, LeqaError> {
        let options = self.options.unwrap_or_default();
        if options.max_esq_terms == 0 {
            return Err(LeqaError::new(
                ErrorKind::Invalid,
                "estimator option `max_esq_terms` must be positive",
            ));
        }
        let store = match self.cache_dir {
            None => None,
            Some(dir) => Some(Arc::new(
                ProfileStore::open(dir)
                    .map_err(LeqaError::from)
                    .map_err(|e| e.context("opening the profile snapshot store"))?,
            )),
        };
        Ok(Session {
            fabric: self.fabric.unwrap_or_else(FabricDims::dac13),
            params: self.params.unwrap_or_else(PhysicalParams::dac13),
            options,
            cache: ShardedCache::default(),
            streams: RwLock::new(HashMap::new()),
            streaming_threshold: self
                .streaming_threshold
                .unwrap_or(DEFAULT_STREAMING_THRESHOLD),
            counters: Arc::new(Counters::default()),
            store,
        })
    }
}

/// One configured LEQA service instance: the single supported entry point
/// for applications (see the crate docs for an example).
///
/// `Session` is `Send + Sync` with every endpoint on `&self` — share one
/// instance across however many threads the service runs (see the module
/// docs for the concurrency model).
#[derive(Debug)]
pub struct Session {
    fabric: FabricDims,
    params: PhysicalParams,
    options: EstimatorOptions,
    cache: ShardedCache,
    /// Streamed programs, keyed by canonical stream name. A single map
    /// (not sharded): entries are a handful of generator descriptors, and
    /// the hot path is a read lock.
    streams: RwLock<HashMap<String, Arc<StreamedProgram>>>,
    streaming_threshold: u64,
    counters: Arc<Counters>,
    store: Option<Arc<ProfileStore>>,
}

/// The `Send + Sync` contract is part of the public API (concurrent
/// services depend on it); this fails to compile if an unsound field
/// sneaks in.
#[allow(dead_code)]
fn _assert_session_is_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<Session>();
    assert::<ProgramHandle>();
    assert::<CacheStats>();
}

/// A program resolved to its canonical identity, before any cache or
/// lowering work: the batch warm phase dedups on `key`.
#[derive(Debug)]
struct ResolvedSpec {
    label: String,
    circuit: Circuit,
    source: String,
    key: u64,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session fabric.
    #[must_use]
    pub fn fabric(&self) -> FabricDims {
        self.fabric
    }

    /// The physical parameters.
    #[must_use]
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The estimator options.
    #[must_use]
    pub fn options(&self) -> &EstimatorOptions {
        &self.options
    }

    /// The op-count threshold at which [`estimate`](Self::estimate)
    /// streams generator-backed workloads (see
    /// [`SessionBuilder::streaming_threshold`]).
    #[must_use]
    pub fn streaming_threshold(&self) -> u64 {
        self.streaming_threshold
    }

    /// The cache counters (atomic snapshots; under concurrent load each
    /// counter is exact and monotone). At quiescence
    /// `cache_hits + cache_misses == loads`; a snapshot taken while
    /// loads are in flight may observe `cache_hits + cache_misses <
    /// loads` (each load bumps `loads` first), never the reverse.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        // Read the halves before `loads` (see `Counters` for the
        // release/acquire pairing that makes the inequality hold).
        let cache_hits = self.counters.hits.load(Ordering::Acquire);
        let cache_misses = self.counters.misses.load(Ordering::Acquire);
        CacheStats {
            profile_builds: self.counters.profile_builds.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            loads: self.counters.loads.load(Ordering::Acquire),
        }
    }

    /// The snapshot-store counters (zero on sessions without a
    /// [`SessionBuilder::cache_dir`]).
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        StoreStats {
            store_hits: self.counters.store_hits.load(Ordering::Relaxed),
            store_misses: self.counters.store_misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached program (in-memory only; disk snapshots, if
    /// configured, survive and re-warm the next loads).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.streams.write().expect("no poisoning").clear();
    }

    /// Loads (or fetches from cache) the program a spec names.
    ///
    /// The cache key is a content hash of the canonical circuit text, so
    /// the same program reached through different specs — a benchmark
    /// name, a file, inline source — shares one profile.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Usage`] for unknown benchmark names, [`ErrorKind::Io`]
    /// for unreadable files, [`ErrorKind::Parse`]/[`ErrorKind::Invalid`]
    /// for bad circuit text.
    pub fn load(&self, spec: &ProgramSpec) -> Result<ProgramHandle, LeqaError> {
        self.load_tracking(spec).map(|(handle, _)| handle)
    }

    /// Resolves a spec to its canonical identity (label, parsed circuit,
    /// canonical text, content key) without touching the cache.
    fn resolve_spec(&self, spec: &ProgramSpec) -> Result<ResolvedSpec, LeqaError> {
        let (label, circuit) = match spec {
            ProgramSpec::Bench { name } => {
                let circuit = leqa_workloads::circuit_by_name(name).ok_or_else(|| {
                    match leqa_workloads::check_workload_name(name) {
                        // A recognized parametric family with out-of-range
                        // parameters (`shor_0`, an overflowing width…) is a
                        // *invalid* request, not an unknown name.
                        Err(leqa_workloads::WorkloadNameError::Invalid { reason }) => {
                            LeqaError::new(ErrorKind::Invalid, reason)
                        }
                        _ => LeqaError::usage(format!(
                            "unknown benchmark `{name}`; names follow Table 3 (e.g. gf2^16mult) \
                             or the parametric forms (e.g. qft_64)"
                        )),
                    }
                })?;
                (name.clone(), circuit)
            }
            ProgramSpec::Path { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(LeqaError::from)
                    .map_err(|e| e.context(format!("reading `{path}`")))?;
                let circuit = parser::parse(&text)?;
                let label = circuit.name().unwrap_or(path.as_str()).to_string();
                (label, circuit)
            }
            ProgramSpec::Source { text } => {
                let circuit = parser::parse(text)?;
                let label = circuit.name().unwrap_or("<inline>").to_string();
                (label, circuit)
            }
        };
        let source = parser::write(&circuit);
        let key = fnv1a(source.as_bytes());
        Ok(ResolvedSpec {
            label,
            circuit,
            source,
            key,
        })
    }

    /// Lowers a resolved circuit into the shareable program data.
    fn lower(&self, resolved: &ResolvedSpec) -> Result<ProgramData, LeqaError> {
        let ft = lower_to_ft(&resolved.circuit)
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("lowering `{}`", resolved.label)))?;
        Ok(ProgramData {
            source: resolved.source.clone(),
            qodg: Qodg::from_ft_circuit(&ft),
            profile: OnceLock::new(),
        })
    }

    fn handle(&self, label: String, shared: Arc<ProgramData>) -> ProgramHandle {
        ProgramHandle {
            label,
            shared,
            counters: Arc::clone(&self.counters),
            store: self.store.clone(),
        }
    }

    /// Like [`load`](Self::load), also reporting whether the program came
    /// from the cache.
    fn load_tracking(&self, spec: &ProgramSpec) -> Result<(ProgramHandle, bool), LeqaError> {
        let resolved = self.resolve_spec(spec)?;
        self.load_resolved(resolved)
    }

    /// The cache half of a load: fetch-or-lower an already-resolved
    /// program, with hit/miss accounting.
    fn load_resolved(&self, resolved: ResolvedSpec) -> Result<(ProgramHandle, bool), LeqaError> {
        if let Some(shared) = self.cache.lookup(resolved.key, &resolved.source) {
            self.counters.record_hit();
            return Ok((self.handle(resolved.label, shared), true));
        }
        // Miss: lower outside any lock (the expensive part), then
        // insert-or-adopt under the shard write lock. A concurrent load
        // of the same program may win the race; the loser adopts the
        // winner's entry so profiles stay exactly-once.
        let candidate = Arc::new(self.lower(&resolved)?);
        let (shared, fresh) = self.cache.insert(resolved.key, candidate);
        if fresh {
            self.counters.record_miss();
        } else {
            self.counters.record_hit();
        }
        Ok((self.handle(resolved.label, shared), !fresh))
    }

    /// Resolves a per-request fabric override against the session fabric.
    fn resolve_fabric(&self, spec: Option<FabricSpec>) -> Result<FabricDims, LeqaError> {
        match spec {
            None => Ok(self.fabric),
            Some(f) => FabricDims::new(f.width, f.height).map_err(LeqaError::from),
        }
    }

    // ── Endpoints ────────────────────────────────────────────────────────

    /// Runs Algorithm 1 on one program.
    ///
    /// # Errors
    ///
    /// Any load error (see [`load`](Self::load)), or
    /// [`ErrorKind::Estimate`] when the program does not fit the fabric.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn estimate(&self, req: &EstimateRequest) -> Result<EstimateResponse, LeqaError> {
        // Size axis: a generator-backed workload at or above the
        // streaming threshold never materializes — its profile and
        // critical path are computed from the gate stream in bounded
        // memory, bit-identical to the materialized pipeline.
        if let ProgramSpec::Bench { name } = &req.program {
            if let Some(stream) = leqa_workloads::stream_by_name(name) {
                if stream.ft_op_count() >= self.streaming_threshold {
                    return self.run_estimate_streamed(req, name, stream);
                }
            }
        }
        let (handle, cached) = self.load_tracking(&req.program)?;
        self.run_estimate(req, &handle, cached)
    }

    /// Estimates one program across candidate square fabrics, through the
    /// amortised sweep engine (bit-identical to independent estimates).
    ///
    /// With the `parallel` feature the per-candidate loop runs on the
    /// persistent worker pool; results are identical either way.
    ///
    /// # Errors
    ///
    /// Any load error, or [`ErrorKind::Invalid`] for a malformed size.
    /// Candidates too small for the program yield unfit points, not
    /// errors.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn sweep(&self, req: &SweepRequest) -> Result<SweepResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_sweep(req, &handle)
    }

    /// Computes the per-qubit presence-zone report.
    ///
    /// # Errors
    ///
    /// Any load error.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn zones(&self, req: &ZonesRequest) -> Result<ZonesResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_zones(req, &handle)
    }

    /// Runs the Table 2 experiment: detailed QSPR mapping next to the
    /// LEQA estimate.
    ///
    /// # Errors
    ///
    /// Any load error, [`ErrorKind::Map`] or [`ErrorKind::Estimate`] when
    /// the program does not fit.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn compare(&self, req: &CompareRequest) -> Result<CompareResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_compare(req, &handle)
    }

    /// Runs the detailed QSPR mapper.
    ///
    /// # Errors
    ///
    /// Any load error, or [`ErrorKind::Map`] when the program does not
    /// fit.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn map(&self, req: &MapRequest) -> Result<MapResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_map(req, &handle)
    }

    /// Executes one request of any kind.
    ///
    /// # Errors
    ///
    /// The named endpoint's errors.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn execute(&self, req: &Request) -> Result<Response, LeqaError> {
        match req {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Sweep(r) => self.sweep(r).map(Response::Sweep),
            Request::Zones(r) => self.zones(r).map(Response::Zones),
            Request::Compare(r) => self.compare(r).map(Response::Compare),
            Request::Map(r) => self.map(r).map(Response::Map),
        }
    }

    /// Executes a batch of requests, one result slot per request in
    /// order; a failing request fails only its own slot.
    ///
    /// Every request's program text is resolved first and deduplicated
    /// by content hash; the *distinct* programs are then lowered
    /// **concurrently** (on the persistent worker pool when the
    /// `parallel` feature is enabled) before the per-request execution
    /// fans out. Responses, `profile_cached` flags and [`CacheStats`]
    /// deltas are identical to executing the requests one by one in
    /// order.
    #[must_use = "the batch response carries every per-request outcome"]
    pub fn batch(&self, requests: &[Request]) -> BatchResponse {
        // Phase 1 (concurrent, cache-untouched): resolve every request's
        // spec to canonical text + content key.
        let resolved: Vec<Result<ResolvedSpec, LeqaError>> =
            fan_out(requests, |req| self.resolve_spec(req.program()));

        // Phase 2: pick, in request order, the first namer of each
        // distinct content key — exactly the request that would miss the
        // cache if the batch ran serially. Keys are FNV hashes, so a
        // later request may share a key with a *different* source (a
        // 64-bit collision); such requests are detected against the
        // first namer's source and routed through the full per-request
        // load path instead, preserving the collision contract ("repeat
        // work, never hand a request some other program's profile").
        let mut first_namer: HashMap<u64, usize> = HashMap::new();
        for (i, slot) in resolved.iter().enumerate() {
            if let Ok(r) = slot {
                first_namer.entry(r.key).or_insert(i);
            }
        }
        let mut warm_order: Vec<usize> = first_namer.values().copied().collect();
        warm_order.sort_unstable();

        // Phase 3 (concurrent over *distinct* programs): fetch-or-lower.
        // `was_cached` records whether the program was already resident
        // before this batch.
        type Warmed = Result<(Arc<ProgramData>, bool), LeqaError>;
        let warmed: Vec<Warmed> = fan_out(&warm_order, |&i| {
            let r = resolved[i].as_ref().expect("warm_order holds Ok slots");
            if let Some(shared) = self.cache.lookup(r.key, &r.source) {
                return Ok((shared, true));
            }
            let candidate = Arc::new(self.lower(r)?);
            let (shared, fresh) = self.cache.insert(r.key, candidate);
            Ok((shared, !fresh))
        });
        let warmed_by_key: HashMap<u64, &Warmed> = warm_order
            .iter()
            .zip(&warmed)
            .map(|(&i, w)| {
                let r = resolved[i].as_ref().expect("warm_order holds Ok slots");
                (r.key, w)
            })
            .collect();

        // Phase 4a: decide each slot's path while the resolved specs can
        // still be cross-referenced — the warm result only applies to a
        // request whose source matches the one that was actually warmed.
        enum Plan {
            /// Phase-1 resolution failed.
            Unresolved,
            /// The warmed program is this request's program.
            Warm { cached: bool },
            /// Warming this request's program failed; inherit the error.
            WarmFailed,
            /// Key collision with the warmed program: full load instead.
            Collision,
        }
        let plans: Vec<Plan> = resolved
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let Ok(r) = slot else { return Plan::Unresolved };
                let namer = first_namer[&r.key];
                let namer_source = &resolved[namer]
                    .as_ref()
                    .expect("first namers resolved")
                    .source;
                if *namer_source != r.source {
                    return Plan::Collision;
                }
                match warmed_by_key[&r.key] {
                    Ok((_, was_cached)) => Plan::Warm {
                        cached: *was_cached || namer != i,
                    },
                    Err(_) => Plan::WarmFailed,
                }
            })
            .collect();

        // Phase 4b (serial, deterministic): per-request accounting and
        // handle assembly, in request order — counters and
        // `profile_cached` flags match the serial execution exactly.
        type Prepared = Result<(usize, ProgramHandle, bool), LeqaError>;
        let prepared: Vec<Prepared> = resolved
            .into_iter()
            .zip(plans)
            .enumerate()
            .map(|(i, (slot, plan))| {
                let per_slot = |e: LeqaError| e.context(format!("batch request {i}"));
                match plan {
                    Plan::Unresolved => Err(per_slot(slot.expect_err("plan says unresolved"))),
                    Plan::Collision => {
                        let r = slot.expect("plan says resolved");
                        self.load_resolved(r)
                            .map(|(handle, cached)| (i, handle, cached))
                            .map_err(per_slot)
                    }
                    Plan::WarmFailed => {
                        let r = slot.expect("plan says resolved");
                        let Err(e) = warmed_by_key[&r.key] else {
                            unreachable!("plan says warming failed")
                        };
                        Err(per_slot(e.clone()))
                    }
                    Plan::Warm { cached } => {
                        let r = slot.expect("plan says resolved");
                        let Ok((shared, _)) = warmed_by_key[&r.key] else {
                            unreachable!("plan says warmed")
                        };
                        if cached {
                            self.counters.record_hit();
                        } else {
                            self.counters.record_miss();
                        }
                        Ok((i, self.handle(r.label, Arc::clone(shared)), cached))
                    }
                }
            })
            .collect();

        // Phase 5 (concurrent): execute.
        let results = fan_out(&prepared, |slot| match slot {
            Err(e) => Err(e.clone()),
            Ok((i, handle, cached)) => self
                .execute_prepared(&requests[*i], handle, *cached)
                .map_err(|e| e.context(format!("batch request {i}"))),
        });

        BatchResponse { results }
    }

    /// Dispatches one request against an already-loaded program, without
    /// touching the cache.
    fn execute_prepared(
        &self,
        req: &Request,
        handle: &ProgramHandle,
        cached: bool,
    ) -> Result<Response, LeqaError> {
        match req {
            Request::Estimate(r) => self.run_estimate(r, handle, cached).map(Response::Estimate),
            Request::Sweep(r) => self.run_sweep(r, handle).map(Response::Sweep),
            Request::Zones(r) => self.run_zones(r, handle).map(Response::Zones),
            Request::Compare(r) => self.run_compare(r, handle).map(Response::Compare),
            Request::Map(r) => self.run_map(r, handle).map(Response::Map),
        }
    }

    /// The streaming counterpart of [`run_estimate`](Self::run_estimate):
    /// profile from the [`StreamingProfileBuilder`], critical path from a
    /// second pass over the stream, QODG never built. Cache accounting
    /// mirrors the materialized path — a session-resident stream entry is
    /// a hit, the snapshot store is consulted under a `stream:`-prefixed
    /// pseudo-source, and `profile_builds` counts streaming builds too.
    fn run_estimate_streamed(
        &self,
        req: &EstimateRequest,
        label: &str,
        stream: ShorStream,
    ) -> Result<EstimateResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let key = stream.name();
        let (entry, cached) = {
            let resident = self
                .streams
                .read()
                .expect("no poisoning")
                .get(&key)
                .map(Arc::clone);
            match resident {
                Some(entry) => {
                    self.counters.record_hit();
                    (entry, true)
                }
                None => match self.streams.write().expect("no poisoning").entry(key) {
                    Entry::Occupied(existing) => {
                        // Another thread won the race; adopt its entry so
                        // the profile stays exactly-once.
                        self.counters.record_hit();
                        (Arc::clone(existing.get()), true)
                    }
                    Entry::Vacant(slot) => {
                        let entry = Arc::new(StreamedProgram {
                            stream,
                            profile: OnceLock::new(),
                        });
                        slot.insert(Arc::clone(&entry));
                        self.counters.record_miss();
                        (entry, false)
                    }
                },
            }
        };

        let source = format!("stream:{}", entry.stream.name());
        let data = entry.profile.get_or_init(|| {
            if let Some(store) = &self.store {
                match store.load(&source) {
                    Ok(data) => {
                        self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                        return data;
                    }
                    Err(_) => {
                        self.counters.store_misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.counters.profile_builds.fetch_add(1, Ordering::Relaxed);
            let mut builder = StreamingProfileBuilder::new(entry.stream.num_qubits());
            for op in entry.stream.ops() {
                builder.push(op);
            }
            let data = builder
                .finish()
                .expect("generated shor streams are well-formed");
            if let Some(store) = &self.store {
                let _ = store.save(&source, &data);
            }
            data
        });

        let estimator = Estimator::with_options(dims, self.params.clone(), self.options);
        let estimate = estimator.estimate_stream_with_data(
            entry.stream.num_qubits(),
            data,
            entry.stream.ops(),
        )?;
        Ok(EstimateResponse {
            program: ProgramSummary {
                label: label.to_string(),
                qubits: u64::from(entry.stream.num_qubits()),
                ops: entry.stream.ft_op_count(),
            },
            fabric: FabricSpec::new(dims.width(), dims.height()),
            latency_us: estimate.latency.as_f64(),
            l_cnot_avg_us: estimate.l_cnot_avg.as_f64(),
            l_one_qubit_avg_us: estimate.l_one_qubit_avg.as_f64(),
            d_uncong_us: estimate.d_uncong.as_f64(),
            avg_zone_area: estimate.avg_zone_area,
            zone_side: estimate.zone_side,
            esq: estimate.esq,
            critical_cnots: estimate.critical.cnot_count,
            critical_one_qubit: estimate.critical.one_qubit_counts.iter().sum(),
            profile_cached: cached,
        })
    }

    fn run_estimate(
        &self,
        req: &EstimateRequest,
        handle: &ProgramHandle,
        cached: bool,
    ) -> Result<EstimateResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let estimator = Estimator::with_options(dims, self.params.clone(), self.options);
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let estimate = estimator.estimate_with_profile(&profile)?;
        Ok(EstimateResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            latency_us: estimate.latency.as_f64(),
            l_cnot_avg_us: estimate.l_cnot_avg.as_f64(),
            l_one_qubit_avg_us: estimate.l_one_qubit_avg.as_f64(),
            d_uncong_us: estimate.d_uncong.as_f64(),
            avg_zone_area: estimate.avg_zone_area,
            zone_side: estimate.zone_side,
            esq: estimate.esq,
            critical_cnots: estimate.critical.cnot_count,
            critical_one_qubit: estimate.critical.one_qubit_counts.iter().sum(),
            profile_cached: cached,
        })
    }

    fn run_sweep(
        &self,
        req: &SweepRequest,
        handle: &ProgramHandle,
    ) -> Result<SweepResponse, LeqaError> {
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let points = sweep_profile_squares(
            &profile,
            &self.params,
            self.options,
            req.sizes.iter().copied(),
        )
        .map_err(LeqaError::from)?;

        let mut optimal: Option<(u32, f64)> = None;
        let points: Vec<SweepPointDto> = points
            .into_iter()
            .map(|point| {
                let side = point.dims.width();
                match point.estimate {
                    None => SweepPointDto {
                        side,
                        l_cnot_avg_us: None,
                        latency_us: None,
                    },
                    Some(e) => {
                        let latency = e.latency.as_f64();
                        if optimal.is_none_or(|(_, best)| latency < best) {
                            optimal = Some((side, latency));
                        }
                        SweepPointDto {
                            side,
                            l_cnot_avg_us: Some(e.l_cnot_avg.as_f64()),
                            latency_us: Some(latency),
                        }
                    }
                }
            })
            .collect();

        Ok(SweepResponse {
            program: handle.summary(),
            points,
            optimal_side: optimal.map(|(side, _)| side),
        })
    }

    fn run_zones(
        &self,
        req: &ZonesRequest,
        handle: &ProgramHandle,
    ) -> Result<ZonesResponse, LeqaError> {
        let report = zone_report_from_iig(handle.profile_data().iig(), self.params.qubit_speed());
        let total_rows = report.len() as u64;
        let mut rows: Vec<&leqa::report::QubitZone> = report.iter().collect();
        rows.sort_by_key(|z| std::cmp::Reverse(z.strength));
        let limit = match req.limit {
            None | Some(0) => rows.len(),
            Some(n) => usize::try_from(n).unwrap_or(usize::MAX).min(rows.len()),
        };
        Ok(ZonesResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(self.fabric.width(), self.fabric.height()),
            rows: rows
                .into_iter()
                .take(limit)
                .map(|z| ZoneRowDto {
                    qubit: z.qubit.0,
                    degree: z.degree,
                    strength: z.strength,
                    zone_area: z.zone_area,
                    expected_path: z.expected_path,
                    uncongested_delay_us: z.uncongested_delay.as_f64(),
                })
                .collect(),
            total_rows,
        })
    }

    fn run_compare(
        &self,
        req: &CompareRequest,
        handle: &ProgramHandle,
    ) -> Result<CompareResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let actual = Mapper::new(dims, self.params.clone()).map(handle.qodg())?;
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let estimate = Estimator::with_options(dims, self.params.clone(), self.options)
            .estimate_with_profile(&profile)?;

        let actual_us = actual.latency.as_f64();
        let estimated_us = estimate.latency.as_f64();
        Ok(CompareResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            actual_us,
            estimated_us,
            error_pct: (actual_us > 0.0)
                .then(|| 100.0 * (estimated_us - actual_us).abs() / actual_us),
        })
    }

    fn run_map(&self, req: &MapRequest, handle: &ProgramHandle) -> Result<MapResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let mut mapper = Mapper::with_config(MapperConfig {
            dims,
            params: self.params.clone(),
            placement: req.placement,
            router: req.router,
            movement: req.movement,
            seed: 0,
        })
        .with_scheduler(req.scheduler);
        if let Some(spec) = req.passes.as_deref() {
            let pm = PassManager::parse(spec)
                .map_err(|msg| LeqaError::new(ErrorKind::Invalid, format!("bad passes: {msg}")))?;
            if !pm.is_empty() {
                mapper = mapper.with_passes(Arc::new(pm));
            }
        }
        let (result, trace) = if req.trace_limit > 0 {
            let (r, t) = mapper.map_with_trace(handle.qodg())?;
            let rows = usize::try_from(req.trace_limit).unwrap_or(usize::MAX);
            (r, Some(t.summary(rows)))
        } else {
            (mapper.map(handle.qodg())?, None)
        };
        Ok(MapResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            latency_us: result.latency.as_f64(),
            cnot_ops: result.stats.cnot_ops,
            avg_cnot_distance: result.stats.avg_cnot_distance(),
            congestion_wait_us: result.stats.congestion_wait.as_f64(),
            max_channel_load: result.stats.max_channel_load,
            trace,
        })
    }
}

/// FNV-1a over the canonical circuit bytes: stable, dependency-free, and
/// plenty for a cache key (lookups verify the source on hit, so a
/// collision costs a rebuild, never a wrong answer). The same hash picks
/// the cache shard (`key mod 16`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_repeats() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn shards_spread_keys() {
        let cache = ShardedCache::default();
        // Distinct keys land on distinct shards at least sometimes.
        let shards: std::collections::HashSet<usize> = (0u64..64)
            .map(|k| {
                let shard = cache.shard(fnv1a(&k.to_le_bytes()));
                cache
                    .shards
                    .iter()
                    .position(|s| std::ptr::eq(s, shard))
                    .expect("shard belongs to the cache")
            })
            .collect();
        assert!(shards.len() > 4, "FNV should spread across shards");
    }
}
