//! The [`Session`]: one configured service instance.
//!
//! A session owns the fabric dimensions, physical parameters and estimator
//! options (set once through [`SessionBuilder`]) and a program cache:
//! every loaded program is keyed by a content hash of its canonical
//! circuit text, and its [`ProfileData`] — the expensive program-dependent
//! half of Algorithm 1 — is computed exactly once no matter how many
//! requests name it, through whichever [`ProgramSpec`] source. The
//! [`batch`](Session::batch) endpoint warms the cache serially (so
//! deduplication is exact), then executes the requests — on scoped worker
//! threads when the `parallel` feature is on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use leqa::report::zone_report_from_iig;
use leqa::sweep::sweep_profile;
use leqa::{Estimator, EstimatorOptions, ProfileData, ProgramProfile};
use leqa_circuit::{decompose::lower_to_ft, parser, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use qspr::{Mapper, MapperConfig};

use crate::dto::{
    CompareRequest, CompareResponse, EstimateRequest, EstimateResponse, FabricSpec, MapRequest,
    MapResponse, ProgramSpec, ProgramSummary, Request, Response, SweepPointDto, SweepRequest,
    SweepResponse, ZoneRowDto, ZonesRequest, ZonesResponse,
};
use crate::error::{ErrorKind, LeqaError};
use crate::BatchResponse;

/// The cached, spec-independent part of a loaded program: canonical
/// source, lowered QODG, and the lazily-computed [`ProfileData`]. Shared
/// (via `Arc`) by every request whose content hashes to it.
#[derive(Debug)]
struct ProgramData {
    source: String,
    qodg: Qodg,
    /// Computed on first use by an endpoint that needs it (estimate,
    /// sweep, zones, compare, `dot --graph iig`) — `map` and `gen` never
    /// pay the IIG/zone passes. `OnceLock` guarantees exactly one
    /// initialization even under the parallel batch fan-out.
    profile: OnceLock<ProfileData>,
}

/// A loaded program as one request sees it: the label the *request's*
/// spec implies plus the shared, content-addressed program data (source,
/// QODG, lazy profile). Cheap to move around (a string and two `Arc`s).
#[derive(Debug)]
pub struct ProgramHandle {
    label: String,
    shared: Arc<ProgramData>,
    profile_builds: Arc<AtomicU64>,
}

impl ProgramHandle {
    /// Display label (benchmark name, `.name` header, or file path) —
    /// derived from the spec *this* load used, not from whichever spec
    /// first populated the cache.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Canonical circuit text (the content that was hashed).
    #[must_use]
    pub fn source(&self) -> &str {
        &self.shared.source
    }

    /// The lowered program.
    #[must_use]
    pub fn qodg(&self) -> &Qodg {
        &self.shared.qodg
    }

    /// The program profile data, computed on first use and cached for
    /// every later request naming the same content.
    #[must_use]
    pub fn profile_data(&self) -> &ProfileData {
        self.shared.profile.get_or_init(|| {
            self.profile_builds.fetch_add(1, Ordering::Relaxed);
            ProfileData::new(&self.shared.qodg)
        })
    }

    /// The identity echoed in responses.
    #[must_use]
    pub fn summary(&self) -> ProgramSummary {
        ProgramSummary {
            label: self.label.clone(),
            qubits: u64::from(self.shared.qodg.num_qubits()),
            ops: self.shared.qodg.op_count() as u64,
        }
    }
}

/// Cache counters, exposed for observability and asserted by the
/// profile-reuse tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Programs whose [`ProfileData`] was computed (one per distinct
    /// content hash).
    pub profile_builds: u64,
    /// Loads served from the cache without recomputation.
    pub cache_hits: u64,
}

/// Builds a [`Session`].
///
/// Defaults mirror the paper: 60×60 fabric, Table 1 ion-trap/\[\[7,1,3\]\]
/// parameters, 20 `E[S_q]` terms with ceiling zone rounding.
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until `build()` is called"]
pub struct SessionBuilder {
    fabric: Option<FabricDims>,
    params: Option<PhysicalParams>,
    options: Option<EstimatorOptions>,
}

impl SessionBuilder {
    /// Sets the session fabric (default: the paper's 60×60).
    pub fn fabric(mut self, dims: FabricDims) -> Self {
        self.fabric = Some(dims);
        self
    }

    /// Sets the physical parameters (default: Table 1's).
    pub fn params(mut self, params: PhysicalParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Sets the estimator options (default: the paper's).
    pub fn options(mut self, options: EstimatorOptions) -> Self {
        self.options = Some(options);
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Invalid`] when the estimator options are out
    /// of range (currently: zero `E[S_q]` terms).
    pub fn build(self) -> Result<Session, LeqaError> {
        let options = self.options.unwrap_or_default();
        if options.max_esq_terms == 0 {
            return Err(LeqaError::new(
                ErrorKind::Invalid,
                "estimator option `max_esq_terms` must be positive",
            ));
        }
        Ok(Session {
            fabric: self.fabric.unwrap_or_else(FabricDims::dac13),
            params: self.params.unwrap_or_else(PhysicalParams::dac13),
            options,
            cache: HashMap::new(),
            profile_builds: Arc::new(AtomicU64::new(0)),
            cache_hits: 0,
        })
    }
}

/// One configured LEQA service instance: the single supported entry point
/// for applications (see the crate docs for an example).
#[derive(Debug)]
pub struct Session {
    fabric: FabricDims,
    params: PhysicalParams,
    options: EstimatorOptions,
    cache: HashMap<u64, Arc<ProgramData>>,
    /// Shared with every [`ProgramHandle`] so lazy profile computation
    /// counts no matter which handle forces it.
    profile_builds: Arc<AtomicU64>,
    cache_hits: u64,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session fabric.
    #[must_use]
    pub fn fabric(&self) -> FabricDims {
        self.fabric
    }

    /// The physical parameters.
    #[must_use]
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The estimator options.
    #[must_use]
    pub fn options(&self) -> &EstimatorOptions {
        &self.options
    }

    /// The cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            profile_builds: self.profile_builds.load(Ordering::Relaxed),
            cache_hits: self.cache_hits,
        }
    }

    /// Drops every cached program.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Loads (or fetches from cache) the program a spec names.
    ///
    /// The cache key is a content hash of the canonical circuit text, so
    /// the same program reached through different specs — a benchmark
    /// name, a file, inline source — shares one profile.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Usage`] for unknown benchmark names, [`ErrorKind::Io`]
    /// for unreadable files, [`ErrorKind::Parse`]/[`ErrorKind::Invalid`]
    /// for bad circuit text.
    pub fn load(&mut self, spec: &ProgramSpec) -> Result<ProgramHandle, LeqaError> {
        self.load_tracking(spec).map(|(handle, _)| handle)
    }

    /// Like [`load`](Self::load), also reporting whether the program came
    /// from the cache.
    fn load_tracking(&mut self, spec: &ProgramSpec) -> Result<(ProgramHandle, bool), LeqaError> {
        let (label, circuit) = match spec {
            ProgramSpec::Bench { name } => {
                let circuit = leqa_workloads::circuit_by_name(name).ok_or_else(|| {
                    LeqaError::usage(format!(
                        "unknown benchmark `{name}`; names follow Table 3 (e.g. gf2^16mult) \
                         or the parametric forms (e.g. qft_64)"
                    ))
                })?;
                (name.clone(), circuit)
            }
            ProgramSpec::Path { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(LeqaError::from)
                    .map_err(|e| e.context(format!("reading `{path}`")))?;
                let circuit = parser::parse(&text)?;
                let label = circuit.name().unwrap_or(path.as_str()).to_string();
                (label, circuit)
            }
            ProgramSpec::Source { text } => {
                let circuit = parser::parse(text)?;
                let label = circuit.name().unwrap_or("<inline>").to_string();
                (label, circuit)
            }
        };

        let source = parser::write(&circuit);
        let key = fnv1a(source.as_bytes());
        // Verify on hit: a 64-bit collision must repeat work, not hand a
        // request some other program's profile.
        if let Some(shared) = self.cache.get(&key) {
            if shared.source == source {
                self.cache_hits += 1;
                return Ok((
                    ProgramHandle {
                        label,
                        shared: Arc::clone(shared),
                        profile_builds: Arc::clone(&self.profile_builds),
                    },
                    true,
                ));
            }
        }

        let ft = lower_to_ft(&circuit)
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("lowering `{label}`")))?;
        let qodg = Qodg::from_ft_circuit(&ft);
        let shared = Arc::new(ProgramData {
            source,
            qodg,
            profile: OnceLock::new(),
        });
        self.cache.insert(key, Arc::clone(&shared));
        Ok((
            ProgramHandle {
                label,
                shared,
                profile_builds: Arc::clone(&self.profile_builds),
            },
            false,
        ))
    }

    /// Resolves a per-request fabric override against the session fabric.
    fn resolve_fabric(&self, spec: Option<FabricSpec>) -> Result<FabricDims, LeqaError> {
        match spec {
            None => Ok(self.fabric),
            Some(f) => FabricDims::new(f.width, f.height).map_err(LeqaError::from),
        }
    }

    // ── Endpoints ────────────────────────────────────────────────────────

    /// Runs Algorithm 1 on one program.
    ///
    /// # Errors
    ///
    /// Any load error (see [`load`](Self::load)), or
    /// [`ErrorKind::Estimate`] when the program does not fit the fabric.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn estimate(&mut self, req: &EstimateRequest) -> Result<EstimateResponse, LeqaError> {
        let (handle, cached) = self.load_tracking(&req.program)?;
        self.run_estimate(req, &handle, cached)
    }

    /// Estimates one program across candidate square fabrics, through the
    /// amortised sweep engine (bit-identical to independent estimates).
    ///
    /// # Errors
    ///
    /// Any load error, or [`ErrorKind::Invalid`] for a malformed size.
    /// Candidates too small for the program yield unfit points, not
    /// errors.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn sweep(&mut self, req: &SweepRequest) -> Result<SweepResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_sweep(req, &handle)
    }

    /// Computes the per-qubit presence-zone report.
    ///
    /// # Errors
    ///
    /// Any load error.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn zones(&mut self, req: &ZonesRequest) -> Result<ZonesResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_zones(req, &handle)
    }

    /// Runs the Table 2 experiment: detailed QSPR mapping next to the
    /// LEQA estimate.
    ///
    /// # Errors
    ///
    /// Any load error, [`ErrorKind::Map`] or [`ErrorKind::Estimate`] when
    /// the program does not fit.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn compare(&mut self, req: &CompareRequest) -> Result<CompareResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_compare(req, &handle)
    }

    /// Runs the detailed QSPR mapper.
    ///
    /// # Errors
    ///
    /// Any load error, or [`ErrorKind::Map`] when the program does not
    /// fit.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn map(&mut self, req: &MapRequest) -> Result<MapResponse, LeqaError> {
        let (handle, _) = self.load_tracking(&req.program)?;
        self.run_map(req, &handle)
    }

    /// Executes one request of any kind.
    ///
    /// # Errors
    ///
    /// The named endpoint's errors.
    #[must_use = "the response (or its error) is the entire point of the call"]
    pub fn execute(&mut self, req: &Request) -> Result<Response, LeqaError> {
        match req {
            Request::Estimate(r) => self.estimate(r).map(Response::Estimate),
            Request::Sweep(r) => self.sweep(r).map(Response::Sweep),
            Request::Zones(r) => self.zones(r).map(Response::Zones),
            Request::Compare(r) => self.compare(r).map(Response::Compare),
            Request::Map(r) => self.map(r).map(Response::Map),
        }
    }

    /// Executes a batch of requests, one result slot per request in
    /// order; a failing request fails only its own slot.
    ///
    /// Programs are loaded (and deduplicated by content hash) serially
    /// first, so each distinct program's profile is built exactly once;
    /// the per-request execution then fans out over scoped worker threads
    /// when the `parallel` feature is enabled.
    #[must_use = "the batch response carries every per-request outcome"]
    pub fn batch(&mut self, requests: &[Request]) -> BatchResponse {
        /// One warmed batch slot: request index, its (cached) program, and
        /// whether the load was a cache hit.
        type Prepared = Result<(usize, ProgramHandle, bool), LeqaError>;

        // Phase 1 (serial, &mut): warm the program cache.
        let prepared: Vec<Prepared> = requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                self.load_tracking(req.program())
                    .map(|(handle, cached)| (i, handle, cached))
                    .map_err(|e| e.context(format!("batch request {i}")))
            })
            .collect();

        // Phase 2 (&self): execute. The closure only reads the session,
        // so the fan-out is safe to thread.
        let run = |slot: &Prepared| match slot {
            Err(e) => Err(e.clone()),
            Ok((i, handle, cached)) => self
                .execute_prepared(&requests[*i], handle, *cached)
                .map_err(|e| e.context(format!("batch request {i}"))),
        };
        #[cfg(feature = "parallel")]
        let results = leqa::exec::parallel_map(&prepared, run);
        #[cfg(not(feature = "parallel"))]
        let results = prepared.iter().map(run).collect();

        BatchResponse { results }
    }

    /// Dispatches one request against an already-loaded program, without
    /// touching the cache (`&self`: thread-safe for the batch fan-out).
    fn execute_prepared(
        &self,
        req: &Request,
        handle: &ProgramHandle,
        cached: bool,
    ) -> Result<Response, LeqaError> {
        match req {
            Request::Estimate(r) => self.run_estimate(r, handle, cached).map(Response::Estimate),
            Request::Sweep(r) => self.run_sweep(r, handle).map(Response::Sweep),
            Request::Zones(r) => self.run_zones(r, handle).map(Response::Zones),
            Request::Compare(r) => self.run_compare(r, handle).map(Response::Compare),
            Request::Map(r) => self.run_map(r, handle).map(Response::Map),
        }
    }

    fn run_estimate(
        &self,
        req: &EstimateRequest,
        handle: &ProgramHandle,
        cached: bool,
    ) -> Result<EstimateResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let estimator = Estimator::with_options(dims, self.params.clone(), self.options);
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let estimate = estimator.estimate_with_profile(&profile)?;
        Ok(EstimateResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            latency_us: estimate.latency.as_f64(),
            l_cnot_avg_us: estimate.l_cnot_avg.as_f64(),
            l_one_qubit_avg_us: estimate.l_one_qubit_avg.as_f64(),
            d_uncong_us: estimate.d_uncong.as_f64(),
            avg_zone_area: estimate.avg_zone_area,
            zone_side: estimate.zone_side,
            esq: estimate.esq,
            critical_cnots: estimate.critical.cnot_count,
            critical_one_qubit: estimate.critical.one_qubit_counts.iter().sum(),
            profile_cached: cached,
        })
    }

    fn run_sweep(
        &self,
        req: &SweepRequest,
        handle: &ProgramHandle,
    ) -> Result<SweepResponse, LeqaError> {
        let mut candidates = Vec::with_capacity(req.sizes.len());
        for &side in &req.sizes {
            candidates.push(FabricDims::new(side, side).map_err(LeqaError::from)?);
        }
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let points = sweep_profile(&profile, &self.params, self.options, candidates);

        let mut optimal: Option<(u32, f64)> = None;
        let points: Vec<SweepPointDto> = points
            .into_iter()
            .map(|point| {
                let side = point.dims.width();
                match point.estimate {
                    None => SweepPointDto {
                        side,
                        l_cnot_avg_us: None,
                        latency_us: None,
                    },
                    Some(e) => {
                        let latency = e.latency.as_f64();
                        if optimal.is_none_or(|(_, best)| latency < best) {
                            optimal = Some((side, latency));
                        }
                        SweepPointDto {
                            side,
                            l_cnot_avg_us: Some(e.l_cnot_avg.as_f64()),
                            latency_us: Some(latency),
                        }
                    }
                }
            })
            .collect();

        Ok(SweepResponse {
            program: handle.summary(),
            points,
            optimal_side: optimal.map(|(side, _)| side),
        })
    }

    fn run_zones(
        &self,
        req: &ZonesRequest,
        handle: &ProgramHandle,
    ) -> Result<ZonesResponse, LeqaError> {
        let report = zone_report_from_iig(handle.profile_data().iig(), self.params.qubit_speed());
        let total_rows = report.len() as u64;
        let mut rows: Vec<&leqa::report::QubitZone> = report.iter().collect();
        rows.sort_by_key(|z| std::cmp::Reverse(z.strength));
        let limit = match req.limit {
            None | Some(0) => rows.len(),
            Some(n) => usize::try_from(n).unwrap_or(usize::MAX).min(rows.len()),
        };
        Ok(ZonesResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(self.fabric.width(), self.fabric.height()),
            rows: rows
                .into_iter()
                .take(limit)
                .map(|z| ZoneRowDto {
                    qubit: z.qubit.0,
                    degree: z.degree,
                    strength: z.strength,
                    zone_area: z.zone_area,
                    expected_path: z.expected_path,
                    uncongested_delay_us: z.uncongested_delay.as_f64(),
                })
                .collect(),
            total_rows,
        })
    }

    fn run_compare(
        &self,
        req: &CompareRequest,
        handle: &ProgramHandle,
    ) -> Result<CompareResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let actual = Mapper::new(dims, self.params.clone()).map(handle.qodg())?;
        let profile = ProgramProfile::from_data(handle.qodg(), handle.profile_data());
        let estimate = Estimator::with_options(dims, self.params.clone(), self.options)
            .estimate_with_profile(&profile)?;

        let actual_us = actual.latency.as_f64();
        let estimated_us = estimate.latency.as_f64();
        Ok(CompareResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            actual_us,
            estimated_us,
            error_pct: (actual_us > 0.0)
                .then(|| 100.0 * (estimated_us - actual_us).abs() / actual_us),
        })
    }

    fn run_map(&self, req: &MapRequest, handle: &ProgramHandle) -> Result<MapResponse, LeqaError> {
        let dims = self.resolve_fabric(req.fabric)?;
        let mapper = Mapper::with_config(MapperConfig {
            dims,
            params: self.params.clone(),
            placement: req.placement,
            router: req.router,
            movement: req.movement,
            seed: 0,
        });
        let (result, trace) = if req.trace_limit > 0 {
            let (r, t) = mapper.map_with_trace(handle.qodg())?;
            let rows = usize::try_from(req.trace_limit).unwrap_or(usize::MAX);
            (r, Some(t.summary(rows)))
        } else {
            (mapper.map(handle.qodg())?, None)
        };
        Ok(MapResponse {
            program: handle.summary(),
            fabric: FabricSpec::new(dims.width(), dims.height()),
            latency_us: result.latency.as_f64(),
            cnot_ops: result.stats.cnot_ops,
            avg_cnot_distance: result.stats.avg_cnot_distance(),
            congestion_wait_us: result.stats.congestion_wait.as_f64(),
            max_channel_load: result.stats.max_channel_load,
            trace,
        })
    }
}

/// FNV-1a over the canonical circuit bytes: stable, dependency-free, and
/// plenty for a cache key (lookups verify the source on hit, so a
/// collision costs a rebuild, never a wrong answer).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_repeats() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
