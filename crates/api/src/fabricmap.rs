//! The JSON mask codec for [`FabricMap`]: declarative fabric descriptions
//! for defective and heterogeneous fabrics.
//!
//! A [`FabricMapSpec`] is the wire form of a fabric map — dimensions,
//! explicitly disabled cells and channels, rectangular parameter
//! overlays, and an optional seeded random-defect layer. The grammar is
//! documented in `WORKLOADS.md` ("Fabric mask files"); `leqa fabric
//! --mask FILE` renders one, and [`FabricMapSpec::build`] turns one into
//! the engine-side [`FabricMap`].
//!
//! Layering order is part of the contract: the random layer (when
//! present) is drawn first, then the explicit `dead_cells` /
//! `dead_channels` lists, then the overlays in file order (later
//! overlays win where they overlap, per
//! [`FabricMap::push_overlay`]).

use leqa_fabric::{Channel, FabricDims, FabricMap, RegionOverlay, Ulb};

use crate::dto::{field, json_opt_num, opt_f64, opt_u32, u64_field};
use crate::error::{ErrorKind, LeqaError};
use crate::json::Json;

/// The seeded random-defect layer of a mask: cells and channels knocked
/// out independently at the given densities by the fabric crate's
/// [`SplitMix64`](leqa_fabric::SplitMix64) stream (same seed ⇒ same
/// fabric, on any host).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RandomDefects {
    /// Probability each cell is defective (`[0, 1]`).
    pub cell_density: f64,
    /// Probability each channel is defective (`[0, 1]`).
    pub channel_density: f64,
    /// RNG seed.
    pub seed: u64,
}

/// One rectangular parameter overlay of a mask (inclusive corners;
/// `None` fields keep the base physical parameters).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OverlaySpec {
    /// Left column (inclusive).
    pub x0: u32,
    /// Top row (inclusive).
    pub y0: u32,
    /// Right column (inclusive).
    pub x1: u32,
    /// Bottom row (inclusive).
    pub y1: u32,
    /// `T_move` override in microseconds.
    pub t_move_us: Option<f64>,
    /// Qubit-speed override (ULB edges per microsecond).
    pub qubit_speed: Option<f64>,
    /// Channel-capacity override.
    pub channel_capacity: Option<u32>,
}

impl OverlaySpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("x0", Json::num(self.x0)),
            ("y0", Json::num(self.y0)),
            ("x1", Json::num(self.x1)),
            ("y1", Json::num(self.y1)),
            ("t_move_us", json_opt_num(self.t_move_us)),
            ("qubit_speed", json_opt_num(self.qubit_speed)),
            (
                "channel_capacity",
                self.channel_capacity.map(Json::num).unwrap_or(Json::Null),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "fabric overlay";
        let corner = |key| -> Result<u32, LeqaError> {
            u64_field(value, key, what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, format!("overlay `{key}` too large")))
        };
        Ok(OverlaySpec {
            x0: corner("x0")?,
            y0: corner("y0")?,
            x1: corner("x1")?,
            y1: corner("y1")?,
            t_move_us: opt_f64(value, "t_move_us", what)?,
            qubit_speed: opt_f64(value, "qubit_speed", what)?,
            channel_capacity: opt_u32(value, "channel_capacity", what)?,
        })
    }
}

/// A disabled channel as its two adjacent cell coordinates.
pub type ChannelEnds = ((u32, u32), (u32, u32));

/// A declarative fabric-map description: the JSON mask grammar of
/// `WORKLOADS.md`. Decode with [`from_json`](Self::from_json), realize
/// with [`build`](Self::build).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FabricMapSpec {
    /// Fabric width in ULBs.
    pub width: u32,
    /// Fabric height in ULBs.
    pub height: u32,
    /// Explicitly disabled cells, as `[x, y]` pairs.
    pub dead_cells: Vec<(u32, u32)>,
    /// Explicitly disabled channels, as `{"from":[x,y],"to":[x,y]}`
    /// pairs of adjacent cells.
    pub dead_channels: Vec<ChannelEnds>,
    /// Parameter overlays, applied in order (later wins on overlap).
    pub overlays: Vec<OverlaySpec>,
    /// Optional seeded random-defect layer, drawn before the explicit
    /// lists.
    pub random: Option<RandomDefects>,
}

impl FabricMapSpec {
    /// A pristine-mask spec over the given dimensions.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        FabricMapSpec {
            width,
            height,
            dead_cells: Vec::new(),
            dead_channels: Vec::new(),
            overlays: Vec::new(),
            random: None,
        }
    }

    /// Serializes the mask document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("width", Json::num(self.width)),
            ("height", Json::num(self.height)),
            (
                "dead_cells",
                Json::Arr(
                    self.dead_cells
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::num(x), Json::num(y)]))
                        .collect(),
                ),
            ),
            (
                "dead_channels",
                Json::Arr(
                    self.dead_channels
                        .iter()
                        .map(|&((ax, ay), (bx, by))| {
                            Json::obj(vec![
                                ("from", Json::Arr(vec![Json::num(ax), Json::num(ay)])),
                                ("to", Json::Arr(vec![Json::num(bx), Json::num(by)])),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "overlays",
                Json::Arr(self.overlays.iter().map(OverlaySpec::to_json).collect()),
            ),
            (
                "random",
                match &self.random {
                    None => Json::Null,
                    Some(r) => Json::obj(vec![
                        ("cell_density", Json::Num(r.cell_density)),
                        ("channel_density", Json::Num(r.channel_density)),
                        ("seed", Json::Num(r.seed as f64)),
                    ]),
                },
            ),
        ])
    }

    /// Decodes a mask document. `dead_cells`, `dead_channels`,
    /// `overlays` and `random` are all optional; only the dimensions are
    /// mandatory.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Json`] on shape errors (content — bounds, adjacency,
    /// densities — is validated by [`build`](Self::build)).
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let what = "fabric mask";
        let dim = |key| -> Result<u32, LeqaError> {
            u64_field(value, key, what)?
                .try_into()
                .map_err(|_| LeqaError::new(ErrorKind::Json, format!("mask `{key}` too large")))
        };
        let pair = |v: &Json, what: &str| -> Result<(u32, u32), LeqaError> {
            let bad = || LeqaError::new(ErrorKind::Json, format!("{what} must be an [x, y] pair"));
            let arr = v.as_arr().ok_or_else(bad)?;
            if arr.len() != 2 {
                return Err(bad());
            }
            let coord = |j: &Json| u32::try_from(j.as_u64().ok_or_else(bad)?).map_err(|_| bad());
            Ok((coord(&arr[0])?, coord(&arr[1])?))
        };
        let dead_cells = match value.get("dead_cells") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`dead_cells` must be an array"))?
                .iter()
                .map(|c| pair(c, "dead cell"))
                .collect::<Result<_, _>>()?,
        };
        let dead_channels = match value.get("dead_channels") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`dead_channels` must be an array"))?
                .iter()
                .map(|c| -> Result<ChannelEnds, LeqaError> {
                    Ok((
                        pair(field(c, "from", "dead channel")?, "channel `from`")?,
                        pair(field(c, "to", "dead channel")?, "channel `to`")?,
                    ))
                })
                .collect::<Result<_, _>>()?,
        };
        let overlays = match value.get("overlays") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "`overlays` must be an array"))?
                .iter()
                .map(OverlaySpec::from_json)
                .collect::<Result<_, _>>()?,
        };
        let random = match value.get("random") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let what = "random defects";
                let density = |key| -> Result<f64, LeqaError> {
                    field(v, key, what)?.as_f64().ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, format!("random `{key}` must be a number"))
                    })
                };
                Some(RandomDefects {
                    cell_density: density("cell_density")?,
                    channel_density: density("channel_density")?,
                    seed: u64_field(v, "seed", what)?,
                })
            }
        };
        Ok(FabricMapSpec {
            width: dim("width")?,
            height: dim("height")?,
            dead_cells,
            dead_channels,
            overlays,
            random,
        })
    }

    /// Realizes the spec as an engine-side [`FabricMap`]: random layer
    /// first, then explicit dead cells/channels, then overlays in order.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Invalid`] for zero dimensions, out-of-range
    /// densities, off-fabric coordinates, non-adjacent channel
    /// endpoints, or overlay values outside the physical-parameter
    /// rules.
    pub fn build(&self) -> Result<FabricMap, LeqaError> {
        let dims = FabricDims::new(self.width, self.height).map_err(LeqaError::from)?;
        let mut map = match &self.random {
            Some(r) => {
                FabricMap::with_random_defects(dims, r.cell_density, r.channel_density, r.seed)
                    .map_err(LeqaError::from)?
            }
            None => FabricMap::pristine(dims),
        };
        for &(x, y) in &self.dead_cells {
            map.disable_cell(Ulb::new(x, y))
                .map_err(LeqaError::from)
                .map_err(|e| e.context(format!("mask dead cell ({x}, {y})")))?;
        }
        for &((ax, ay), (bx, by)) in &self.dead_channels {
            let channel = Channel::between(Ulb::new(ax, ay), Ulb::new(bx, by))
                .map_err(LeqaError::from)
                .map_err(|e| e.context(format!("mask dead channel ({ax}, {ay})–({bx}, {by})")))?;
            map.disable_channel(channel)
                .map_err(LeqaError::from)
                .map_err(|e| e.context(format!("mask dead channel ({ax}, {ay})–({bx}, {by})")))?;
        }
        for (i, o) in self.overlays.iter().enumerate() {
            map.push_overlay(RegionOverlay {
                x0: o.x0,
                y0: o.y0,
                x1: o.x1,
                y1: o.y1,
                t_move_us: o.t_move_us,
                qubit_speed: o.qubit_speed,
                channel_capacity: o.channel_capacity,
            })
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("mask overlay {i}")))?;
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> FabricMapSpec {
        FabricMapSpec {
            width: 6,
            height: 4,
            dead_cells: vec![(1, 1), (4, 2)],
            dead_channels: vec![((0, 0), (1, 0)), ((2, 1), (2, 2))],
            overlays: vec![OverlaySpec {
                x0: 0,
                y0: 0,
                x1: 2,
                y1: 3,
                t_move_us: Some(250.0),
                qubit_speed: None,
                channel_capacity: Some(2),
            }],
            random: None,
        }
    }

    #[test]
    fn mask_round_trips_through_json() {
        let spec = sample();
        let back = FabricMapSpec::from_json(&parse(&spec.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, spec);

        let with_random = FabricMapSpec {
            random: Some(RandomDefects {
                cell_density: 0.1,
                channel_density: 0.05,
                seed: 42,
            }),
            ..sample()
        };
        let back =
            FabricMapSpec::from_json(&parse(&with_random.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, with_random);
    }

    #[test]
    fn minimal_mask_needs_only_dimensions() {
        let doc = parse(r#"{"width":5,"height":3}"#).unwrap();
        let spec = FabricMapSpec::from_json(&doc).unwrap();
        assert_eq!(spec, FabricMapSpec::new(5, 3));
        let map = spec.build().unwrap();
        assert!(map.is_pristine());
    }

    #[test]
    fn build_applies_every_layer() {
        let map = sample().build().unwrap();
        assert_eq!(map.dead_cells(), 2);
        assert_eq!(map.dead_channels(), 2);
        assert!(!map.cell_enabled(Ulb::new(1, 1)));
        assert!(!map.cell_enabled(Ulb::new(4, 2)));
        let ch = Channel::between(Ulb::new(0, 0), Ulb::new(1, 0)).unwrap();
        assert!(!map.channel_enabled(ch));
        assert_eq!(map.overlays().len(), 1);
        assert_eq!(map.overlays()[0].t_move_us, Some(250.0));
    }

    #[test]
    fn random_layer_composes_with_explicit_lists() {
        let spec = FabricMapSpec {
            dead_cells: vec![(0, 0)],
            random: Some(RandomDefects {
                cell_density: 0.0,
                channel_density: 0.0,
                seed: 9,
            }),
            ..FabricMapSpec::new(4, 4)
        };
        let map = spec.build().unwrap();
        assert_eq!(map.dead_cells(), 1);
        assert!(!map.cell_enabled(Ulb::new(0, 0)));
    }

    #[test]
    fn bad_masks_are_invalid_errors() {
        // Off-fabric dead cell.
        let off = FabricMapSpec {
            dead_cells: vec![(9, 9)],
            ..FabricMapSpec::new(4, 4)
        };
        let err = off.build().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Invalid);
        assert!(err.to_string().contains("(9, 9)"), "{err}");

        // Non-adjacent channel endpoints.
        let diag = FabricMapSpec {
            dead_channels: vec![((0, 0), (1, 1))],
            ..FabricMapSpec::new(4, 4)
        };
        assert_eq!(diag.build().unwrap_err().kind(), ErrorKind::Invalid);

        // Density out of range.
        let dense = FabricMapSpec {
            random: Some(RandomDefects {
                cell_density: 1.5,
                channel_density: 0.0,
                seed: 0,
            }),
            ..FabricMapSpec::new(4, 4)
        };
        assert_eq!(dense.build().unwrap_err().kind(), ErrorKind::Invalid);
    }

    #[test]
    fn shape_errors_are_json_errors() {
        for doc in [
            r#"{"height":3}"#,
            r#"{"width":5,"height":3,"dead_cells":[[1]]}"#,
            r#"{"width":5,"height":3,"dead_cells":"nope"}"#,
            r#"{"width":5,"height":3,"dead_channels":[{"from":[0,0]}]}"#,
            r#"{"width":5,"height":3,"random":{"cell_density":0.1}}"#,
        ] {
            let err = FabricMapSpec::from_json(&parse(doc).unwrap()).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Json, "{doc}");
        }
    }
}
