//! The unified error taxonomy of the LEQA service surface.
//!
//! Every failure anywhere in the stack — argument parsing, circuit I/O,
//! estimation, detailed mapping, JSON decoding — surfaces as one
//! [`LeqaError`]: a machine-readable [`ErrorKind`], a human message, and a
//! context chain built up as the error crosses layers. Each kind maps to a
//! stable process exit code (see [`LeqaError::exit_code`] and the table in
//! `API.md`), and errors serialize to JSON so batch responses can carry
//! per-request failures.

use std::fmt;

use crate::json::{Json, JsonError};

/// The stable failure categories of the API.
///
/// `#[non_exhaustive]`: new categories may appear; match with a wildcard
/// arm. Existing kinds and their exit codes never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The request itself is malformed (unknown flag, missing argument,
    /// unknown benchmark name).
    Usage,
    /// An input could not be read (file system, pipes).
    Io,
    /// Circuit text failed to parse.
    Parse,
    /// A structurally valid input violates a domain rule (qubit out of
    /// range, zero-sized fabric, bad option value).
    Invalid,
    /// The latency estimator rejected the request (e.g. fabric too small).
    Estimate,
    /// The detailed QSPR mapper rejected the request.
    Map,
    /// A JSON request/response failed to decode or used an unsupported
    /// schema version.
    Json,
    /// The service refused the request under admission control — the
    /// connection or in-flight cap was reached, or the server is
    /// draining for shutdown. Retryable: back off and resend.
    Overloaded,
    /// The fabric's defect map disconnects a required qubit transfer:
    /// no defect-free route exists (dead cells/channels percolate).
    Unroutable,
    /// No replica can currently serve the request — every routable
    /// replica is dead, or the one holding the request's connection was
    /// lost mid-flight and the supervisor has not (or cannot) bring a
    /// replacement up. Retryable: back off and resend; the shard
    /// supervisor restarts dead in-process replicas.
    Unavailable,
    /// The request's `timeout_ms` deadline elapsed before a reply could
    /// be produced. The work may or may not have run; resend with a
    /// larger budget if the answer is still wanted.
    DeadlineExceeded,
    /// A bug: an invariant the service relies on did not hold.
    Internal,
}

impl ErrorKind {
    /// Every kind, in exit-code order — the canonical enumeration the
    /// documentation-sync tests iterate (update this when adding a
    /// kind, or the `error_table` test will fail the build).
    pub const ALL: [ErrorKind; 12] = [
        ErrorKind::Usage,
        ErrorKind::Io,
        ErrorKind::Parse,
        ErrorKind::Invalid,
        ErrorKind::Estimate,
        ErrorKind::Map,
        ErrorKind::Json,
        ErrorKind::Overloaded,
        ErrorKind::Unroutable,
        ErrorKind::Unavailable,
        ErrorKind::DeadlineExceeded,
        ErrorKind::Internal,
    ];

    /// The stable wire name of the kind (lowercase, used in JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Estimate => "estimate",
            ErrorKind::Map => "map",
            ErrorKind::Json => "json",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Unroutable => "unroutable",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name back to a kind.
    #[must_use]
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "usage" => ErrorKind::Usage,
            "io" => ErrorKind::Io,
            "parse" => ErrorKind::Parse,
            "invalid" => ErrorKind::Invalid,
            "estimate" => ErrorKind::Estimate,
            "map" => ErrorKind::Map,
            "json" => ErrorKind::Json,
            "overloaded" => ErrorKind::Overloaded,
            "unroutable" => ErrorKind::Unroutable,
            "unavailable" => ErrorKind::Unavailable,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// One error, anywhere in the LEQA stack.
#[derive(Debug, Clone, PartialEq)]
pub struct LeqaError {
    kind: ErrorKind,
    message: String,
    /// Outermost-first context frames added by [`LeqaError::context`].
    context: Vec<String>,
}

impl LeqaError {
    /// Creates an error of the given kind.
    #[must_use]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        LeqaError {
            kind,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Shorthand for a [`ErrorKind::Usage`] error.
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        LeqaError::new(ErrorKind::Usage, message)
    }

    /// Shorthand for an [`ErrorKind::Internal`] error.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        LeqaError::new(ErrorKind::Internal, message)
    }

    /// Adds an outer context frame ("while loading program `x`").
    /// Frames display outermost first, like an anyhow chain.
    #[must_use]
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }

    /// The failure category.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The innermost message, without context frames.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The context frames, outermost first.
    #[must_use]
    pub fn context_frames(&self) -> &[String] {
        &self.context
    }

    /// The stable process exit code for this kind.
    ///
    /// | kind | code |
    /// |---|---|
    /// | `usage` | 2 |
    /// | `io` | 3 |
    /// | `parse` | 4 |
    /// | `invalid` | 5 |
    /// | `estimate` | 6 |
    /// | `map` | 7 |
    /// | `json` | 8 |
    /// | `overloaded` | 9 |
    /// | `unroutable` | 10 |
    /// | `unavailable` | 11 |
    /// | `deadline_exceeded` | 12 |
    /// | `internal` | 70 |
    ///
    /// (0 is success; 1 is reserved for failures outside the taxonomy,
    /// e.g. a panic. 70 follows BSD's `EX_SOFTWARE`.)
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::Parse => 4,
            ErrorKind::Invalid => 5,
            ErrorKind::Estimate => 6,
            ErrorKind::Map => 7,
            ErrorKind::Json => 8,
            ErrorKind::Overloaded => 9,
            ErrorKind::Unroutable => 10,
            ErrorKind::Unavailable => 11,
            ErrorKind::DeadlineExceeded => 12,
            ErrorKind::Internal => 70,
        }
    }

    /// Serializes the error (kind + message + context) to JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str(self.kind.name())),
            ("message", Json::str(&self.message)),
            (
                "context",
                Json::Arr(self.context.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Decodes an error serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::Json`] error when the document does not
    /// have the error shape.
    pub fn from_json(value: &Json) -> Result<Self, LeqaError> {
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_name)
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "error object needs a known `kind`"))?;
        let message = value
            .get("message")
            .and_then(Json::as_str)
            .ok_or_else(|| LeqaError::new(ErrorKind::Json, "error object needs a `message`"))?
            .to_string();
        let context = match value.get("context") {
            None => Vec::new(),
            Some(ctx) => ctx
                .as_arr()
                .ok_or_else(|| LeqaError::new(ErrorKind::Json, "error `context` must be an array"))?
                .iter()
                .map(|frame| {
                    frame.as_str().map(str::to_string).ok_or_else(|| {
                        LeqaError::new(ErrorKind::Json, "error context frames must be strings")
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(LeqaError {
            kind,
            message,
            context,
        })
    }
}

impl fmt::Display for LeqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for frame in self.context.iter().rev() {
            write!(f, "{frame}: ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for LeqaError {}

// ── Conversions from every layer's native error ──────────────────────────

impl From<std::io::Error> for LeqaError {
    fn from(e: std::io::Error) -> Self {
        LeqaError::new(ErrorKind::Io, format!("io error: {e}"))
    }
}

impl From<leqa_circuit::CircuitError> for LeqaError {
    fn from(e: leqa_circuit::CircuitError) -> Self {
        let kind = match &e {
            leqa_circuit::CircuitError::Parse { .. } => ErrorKind::Parse,
            _ => ErrorKind::Invalid,
        };
        LeqaError::new(kind, format!("circuit error: {e}"))
    }
}

impl From<leqa::EstimateError> for LeqaError {
    fn from(e: leqa::EstimateError) -> Self {
        LeqaError::new(ErrorKind::Estimate, format!("estimation error: {e}"))
    }
}

impl From<qspr::MapError> for LeqaError {
    fn from(e: qspr::MapError) -> Self {
        let kind = match &e {
            qspr::MapError::Unroutable { .. } => ErrorKind::Unroutable,
            // A broken pass invariant is a bug in a pass, not bad input:
            // surface it as an internal error (exit 70), message naming
            // the pass.
            qspr::MapError::InvariantViolation { .. } => ErrorKind::Internal,
            _ => ErrorKind::Map,
        };
        LeqaError::new(kind, format!("mapping error: {e}"))
    }
}

impl From<leqa_fabric::FabricError> for LeqaError {
    fn from(e: leqa_fabric::FabricError) -> Self {
        LeqaError::new(ErrorKind::Invalid, format!("fabric error: {e}"))
    }
}

impl From<JsonError> for LeqaError {
    fn from(e: JsonError) -> Self {
        LeqaError::new(ErrorKind::Json, format!("json error: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prints_context_outermost_first() {
        let err = LeqaError::new(ErrorKind::Io, "no such file")
            .context("loading program `a.qc`")
            .context("request 3 of 5");
        assert_eq!(
            err.to_string(),
            "request 3 of 5: loading program `a.qc`: no such file"
        );
    }

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        let codes: Vec<u8> = ErrorKind::ALL
            .iter()
            .map(|&k| LeqaError::new(k, "x").exit_code())
            .collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 70]);
    }

    #[test]
    fn wire_names_round_trip() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("nope"), None);
    }

    #[test]
    fn json_round_trip() {
        let err = LeqaError::new(ErrorKind::Estimate, "fabric too small").context("batch item 0");
        let back = LeqaError::from_json(&err.to_json()).unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn layer_errors_map_to_their_kinds() {
        let io: LeqaError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(io.kind(), ErrorKind::Io);
        assert!(io.to_string().contains("io error"));

        let est: LeqaError = leqa::EstimateError::FabricTooSmall {
            qubits: 10,
            area: 4,
        }
        .into();
        assert_eq!(est.kind(), ErrorKind::Estimate);
        assert!(est.to_string().contains("cannot be placed"));

        let map: LeqaError = qspr::MapError::FabricTooSmall {
            qubits: 10,
            area: 4,
        }
        .into();
        assert_eq!(map.kind(), ErrorKind::Map);

        let unroutable: LeqaError = qspr::MapError::Unroutable {
            from: leqa_fabric::Ulb::new(0, 0),
            to: leqa_fabric::Ulb::new(3, 3),
        }
        .into();
        assert_eq!(unroutable.kind(), ErrorKind::Unroutable);
        assert_eq!(unroutable.exit_code(), 10);

        // A pipeline invariant violation is a bug in a pass, not a user
        // error: it surfaces as `Internal` with the pass named.
        let violated: LeqaError = qspr::MapError::InvariantViolation {
            pass: "dce".to_string(),
            reason: "graph lost its end node".to_string(),
        }
        .into();
        assert_eq!(violated.kind(), ErrorKind::Internal);
        assert_eq!(violated.exit_code(), 70);
        assert!(violated.to_string().contains("dce"));
    }
}
