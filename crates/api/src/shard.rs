//! `leqa shard` — a sharded front-end over N daemon replicas.
//!
//! One listener accepts clients speaking the same wire protocols as a
//! single daemon (NDJSON by default, `frame1` after upgrade — see
//! [`crate::server`] and [`crate::frame`]); behind it, N replica daemons
//! (spawned in-process or attached by address) do the work. The
//! front-end:
//!
//! * **routes work frames by content**: the FNV-1a hash of the program's
//!   identity text (bench name, path, or inline source — the same
//!   content-hash discipline as the session profile cache) picks the
//!   replica, so repeats of a program always land on the replica whose
//!   cache is warm;
//! * **broadcasts control frames**: `{"cmd":"stats"}` fans out to every
//!   live replica and the [`StatsResponse`]s merge
//!   ([`StatsResponse::merge`]) into one fleet-wide snapshot;
//!   `{"cmd":"shutdown"}` stops the whole fleet, then the front-end;
//! * **fails over**: a replica that drops its connection is marked dead
//!   fleet-wide, its in-flight work frames re-route to the next live
//!   replica (requests are pure computations, so a resend is safe), and
//!   broadcasts complete without it. With no live replicas left,
//!   requests answer with an `io`-kind error frame.
//!
//! Replica links always speak `frame1` (the front-end upgrades each link
//! it opens), so one client connection pipelining frames keeps every
//! replica busy concurrently. Replies stay **byte-identical** to a
//! direct daemon: work replies are forwarded verbatim.

use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::dto::{ControlFrame, ErrorFrame, ShutdownAck, StatsResponse, UpgradeAck};
use crate::frame::{write_frame, FrameDecoder};
use crate::json;
use crate::server::{upgrade_request, Frame, Server};
use crate::session::fnv1a;
use crate::{ErrorKind, LeqaError};

/// Read-poll interval for shard sockets (mirrors the daemon's).
const READ_POLL: std::time::Duration = std::time::Duration::from_millis(100);

/// One backend daemon the shard routes to.
struct Replica {
    addr: SocketAddr,
    /// Cleared fleet-wide the first time any connection sees this
    /// replica's link die; never set again.
    alive: AtomicBool,
    /// The in-process server for spawned replicas (used to stop and
    /// join them on shutdown); `None` for attached replicas.
    server: Option<Server>,
}

struct ShardInner {
    replicas: Mutex<Vec<Arc<Replica>>>,
    /// Join handles of in-process replica accept loops.
    replica_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    wake_addr: Mutex<Option<SocketAddr>>,
}

/// The sharded front-end (see the [module docs](self)). Cheaply
/// cloneable (an `Arc` handle); clones share the replica set and
/// shutdown flag.
#[derive(Clone)]
pub struct Shard {
    inner: Arc<ShardInner>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("replicas", &self.replicas())
            .field("shutdown", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::new()
    }
}

impl Shard {
    /// An empty shard; add replicas with
    /// [`spawn_replica`](Self::spawn_replica) /
    /// [`attach_replica`](Self::attach_replica) before binding.
    #[must_use]
    pub fn new() -> Shard {
        Shard {
            inner: Arc::new(ShardInner {
                replicas: Mutex::new(Vec::new()),
                replica_threads: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
            }),
        }
    }

    /// Spawns `server` as an in-process replica on a loopback port of
    /// the OS's choosing and returns its address. The replica's accept
    /// loop runs on its own thread; it is stopped and joined when the
    /// shard shuts down.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the replica cannot bind or its accept
    /// thread cannot be spawned.
    pub fn spawn_replica(&self, server: Server) -> Result<SocketAddr, LeqaError> {
        let bound = server.bind("127.0.0.1:0")?;
        let addr = bound.local_addr();
        let handle = std::thread::Builder::new()
            .name("leqa-shard-replica".to_string())
            .spawn(move || {
                let _ = bound.run();
            })
            .map_err(LeqaError::from)?;
        self.inner
            .replica_threads
            .lock()
            .expect("no poisoning")
            .push(handle);
        self.push_replica(Replica {
            addr,
            alive: AtomicBool::new(true),
            server: Some(server),
        });
        Ok(addr)
    }

    /// Attaches an already-running daemon at `addr` as a replica. The
    /// shard forwards shutdown to it but does not own its lifecycle.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Usage`] when `addr` is not a valid socket address.
    pub fn attach_replica(&self, addr: &str) -> Result<SocketAddr, LeqaError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| LeqaError::usage(format!("invalid replica address `{addr}`")))?;
        self.push_replica(Replica {
            addr,
            alive: AtomicBool::new(true),
            server: None,
        });
        Ok(addr)
    }

    /// Number of replicas (live or dead).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.inner.replicas.lock().expect("no poisoning").len()
    }

    /// Whether shutdown was requested. Once set it never clears.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Requests graceful shutdown: the accept loop stops, client
    /// connections drain, and spawned replicas are stopped and joined by
    /// [`BoundShard::run`]. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let wake = *self.inner.wake_addr.lock().expect("no poisoning");
        if let Some(addr) = wake {
            // Wake a blocked `accept`; the loop re-checks the flag
            // before serving whatever it accepted.
            let _ = TcpStream::connect_timeout(&addr, READ_POLL);
        }
    }

    /// Binds the front-end listener (port `0` lets the OS pick).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the address cannot be bound.
    pub fn bind(&self, addr: &str) -> Result<BoundShard, LeqaError> {
        let listener = TcpListener::bind(addr)
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("binding `{addr}`")))?;
        let local = listener.local_addr().map_err(LeqaError::from)?;
        *self.inner.wake_addr.lock().expect("no poisoning") = Some(local);
        Ok(BoundShard {
            shard: self.clone(),
            listener,
            local,
        })
    }

    fn push_replica(&self, replica: Replica) {
        self.inner
            .replicas
            .lock()
            .expect("no poisoning")
            .push(Arc::new(replica));
    }

    fn replica_snapshot(&self) -> Vec<Arc<Replica>> {
        self.inner.replicas.lock().expect("no poisoning").clone()
    }
}

/// A [`Shard`] bound to its front-door address, ready to
/// [`run`](Self::run).
#[derive(Debug)]
pub struct BoundShard {
    shard: Shard,
    listener: TcpListener,
    local: SocketAddr,
}

impl BoundShard {
    /// The actual bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle to the shard (clone it to trigger [`Shard::shutdown`]
    /// from a supervising thread).
    #[must_use]
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Accepts and serves clients until shutdown, then joins client
    /// threads, stops spawned replicas and joins their accept loops.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when a client thread cannot be spawned.
    pub fn run(self) -> Result<(), LeqaError> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shard.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    std::thread::sleep(READ_POLL);
                    continue;
                }
            };
            handles.retain(|h| !h.is_finished());
            let shard = self.shard.clone();
            let handle = std::thread::Builder::new()
                .name("leqa-shard-conn".to_string())
                .spawn(move || {
                    let _ = serve_client(&shard, stream);
                })
                .map_err(LeqaError::from)?;
            handles.push(handle);
        }
        drop(self.listener);
        for handle in handles {
            let _ = handle.join();
        }
        // Stop spawned replicas (already draining when the shutdown came
        // over the wire — `Server::shutdown` is idempotent) and join
        // their accept loops.
        for replica in self.shard.replica_snapshot() {
            if let Some(server) = &replica.server {
                server.shutdown();
            }
        }
        let threads: Vec<_> = self
            .shard
            .inner
            .replica_threads
            .lock()
            .expect("no poisoning")
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
        Ok(())
    }
}

// ── Per-connection state ─────────────────────────────────────────────

/// How a reply reaches the client.
enum Deliver {
    /// Frame-mode client: write a frame carrying this tag.
    Tag(u32),
    /// Line-mode client: rendezvous with the (serial) client loop.
    Sync(mpsc::Sender<String>),
}

enum PendingKind {
    /// Forward the replica's reply verbatim.
    Work(Deliver),
    /// Merge every replica's stats, deliver the sum.
    Stats {
        outstanding: Vec<usize>,
        acc: StatsResponse,
        deliver: Deliver,
    },
    /// Deliver one ack once every replica acked, then stop the shard.
    Shutdown {
        outstanding: Vec<usize>,
        deliver: Deliver,
    },
}

struct Pending {
    /// Replica the frame was sent to (`usize::MAX` for broadcasts).
    replica: usize,
    /// Routing hash, for re-routing on failover.
    hash: u64,
    /// The frame payload, for re-sending on failover.
    payload: String,
    kind: PendingKind,
}

/// A replica link as seen by one client connection.
enum Link {
    /// Not opened yet (links open lazily on first routed frame).
    Closed,
    /// Upgraded to `frame1`; a reader thread is draining replies.
    Up(TcpStream),
    /// This connection saw the link die (the fleet-wide `alive` flag is
    /// cleared at the same time).
    Dead,
}

struct ClientWriter {
    stream: TcpStream,
    /// False until the client upgrades; selects line vs frame replies.
    frame_mode: bool,
}

impl ClientWriter {
    fn deliver(&mut self, tag: u32, reply: &str) -> std::io::Result<()> {
        if self.frame_mode {
            write_frame(&mut self.stream, tag, reply.as_bytes())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        } else {
            self.stream.write_all(reply.as_bytes())?;
            self.stream.write_all(b"\n")?;
        }
        self.stream.flush()
    }
}

struct ConnState {
    shard: Shard,
    /// Replica set snapshot (index-stable for this connection; the
    /// `alive` flags inside are the shared fleet-wide ones).
    replicas: Vec<Arc<Replica>>,
    writer: Mutex<ClientWriter>,
    links: Vec<Mutex<Link>>,
    pending: Mutex<HashMap<u32, Pending>>,
    /// Internal tags for line-mode requests.
    next_tag: AtomicU32,
    /// Set when the client loop exits; replica readers poll it.
    closed: AtomicBool,
}

impl ConnState {
    fn pending_is_empty(&self) -> bool {
        self.pending.lock().expect("no poisoning").is_empty()
    }
}

fn error_frame(kind: ErrorKind, message: impl Into<String>) -> String {
    ErrorFrame::new(LeqaError::new(kind, message))
        .to_json()
        .encode()
}

/// Serves one client connection end to end (line mode, then frame mode
/// after an upgrade).
fn serve_client(shard: &Shard, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true)?;
    let replicas = shard.replica_snapshot();
    let conn = Arc::new(ConnState {
        shard: shard.clone(),
        links: (0..replicas.len())
            .map(|_| Mutex::new(Link::Closed))
            .collect(),
        replicas,
        writer: Mutex::new(ClientWriter {
            stream: stream.try_clone()?,
            frame_mode: false,
        }),
        pending: Mutex::new(HashMap::new()),
        next_tag: AtomicU32::new(0),
        closed: AtomicBool::new(false),
    });
    let result = serve_client_lines(&conn, stream);
    conn.closed.store(true, Ordering::Release);
    result
}

/// Line-mode client loop: strict one-reply-per-line rendezvous, exactly
/// like a single daemon's NDJSON engine. Hands off to
/// [`serve_client_frames`] on upgrade.
fn serve_client_lines(conn: &Arc<ConnState>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if let Some(proto) = upgrade_request(&line) {
                    let ack = UpgradeAck { proto }.to_json().encode();
                    {
                        let mut writer = conn.writer.lock().expect("no poisoning");
                        writer.deliver(0, &ack)?;
                        writer.frame_mode = true;
                    }
                    let residual = reader.buffer().to_vec();
                    return serve_client_frames(conn, reader.into_inner(), &residual);
                }
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = request_reply(conn, trimmed);
                    conn.writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(0, &reply)?;
                    if conn.shard.is_shutting_down() {
                        return Ok(());
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if conn.shard.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let reply = error_frame(ErrorKind::Json, "line is not valid UTF-8");
                return conn.writer.lock().expect("no poisoning").deliver(0, &reply);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Frame-mode client loop: decode client frames, submit each with its
/// tag; replica readers deliver replies directly (out of order).
fn serve_client_frames(
    conn: &Arc<ConnState>,
    mut stream: TcpStream,
    residual: &[u8],
) -> std::io::Result<()> {
    let mut decoder = FrameDecoder::new();
    decoder.push(residual);
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match decoder.next() {
                Ok(Some((tag, payload))) => submit_client_frame(conn, tag, payload),
                Ok(None) => break,
                Err(fe) => {
                    let reply = ErrorFrame::new(fe.error).to_json().encode();
                    let _ = conn
                        .writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(fe.tag.unwrap_or(0), &reply);
                    return Ok(());
                }
            }
        }
        if conn.shard.is_shutting_down() && conn.pending_is_empty() {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if let Err(fe) = decoder.finish() {
                    let reply = ErrorFrame::new(fe.error).to_json().encode();
                    let _ = conn
                        .writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(fe.tag.unwrap_or(0), &reply);
                }
                // Let in-flight replies drain before tearing down the
                // connection (replica readers deliver them directly).
                while !conn.pending_is_empty() && !conn.shard.is_shutting_down() {
                    std::thread::sleep(READ_POLL);
                }
                return Ok(());
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Line-mode request: submit under an internal tag and wait for the
/// (single) reply, preserving the NDJSON one-reply-per-line-in-order
/// contract.
fn request_reply(conn: &Arc<ConnState>, text: &str) -> String {
    let (tx, rx) = mpsc::channel();
    let tag = conn.next_tag.fetch_add(1, Ordering::Relaxed);
    submit(conn, tag, text.to_string(), Deliver::Sync(tx));
    rx.recv()
        .unwrap_or_else(|_| error_frame(ErrorKind::Internal, "reply channel dropped"))
}

/// Frame-mode request: the client's tag is the routing identity; a tag
/// already in flight is refused (its reply could not be matched).
fn submit_client_frame(conn: &Arc<ConnState>, tag: u32, payload: Vec<u8>) {
    let text = match String::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            let reply = error_frame(ErrorKind::Json, "frame payload is not valid UTF-8");
            let _ = conn
                .writer
                .lock()
                .expect("no poisoning")
                .deliver(tag, &reply);
            return;
        }
    };
    if conn
        .pending
        .lock()
        .expect("no poisoning")
        .contains_key(&tag)
    {
        let reply = error_frame(
            ErrorKind::Json,
            format!("tag {tag} is already in flight on this connection"),
        );
        let _ = conn
            .writer
            .lock()
            .expect("no poisoning")
            .deliver(tag, &reply);
        return;
    }
    submit(conn, tag, text, Deliver::Tag(tag));
}

/// Classifies and routes one request: work frames go to the replica
/// owning the program's content hash; control frames broadcast.
fn submit(conn: &Arc<ConnState>, tag: u32, text: String, deliver: Deliver) {
    let frame = match Frame::parse(text.trim()) {
        Ok(frame) => frame,
        Err(e) => {
            deliver_reply(conn, &deliver, &ErrorFrame::new(e).to_json().encode());
            return;
        }
    };
    match frame {
        Frame::Control(ControlFrame::Upgrade(_)) => {
            let reply = match deliver {
                Deliver::Tag(_) => {
                    error_frame(ErrorKind::Json, "connection already upgraded to frame1")
                }
                Deliver::Sync(_) => error_frame(
                    ErrorKind::Json,
                    "`upgrade` is only available on the TCP transport",
                ),
            };
            deliver_reply(conn, &deliver, &reply);
        }
        Frame::Control(control) => broadcast(conn, tag, &text, control, deliver),
        work => {
            let hash = route_hash(&work, &text);
            let Some(replica) = route(conn, hash) else {
                deliver_reply(
                    conn,
                    &deliver,
                    &error_frame(ErrorKind::Io, "no live replicas"),
                );
                return;
            };
            conn.pending.lock().expect("no poisoning").insert(
                tag,
                Pending {
                    replica,
                    hash,
                    payload: text.clone(),
                    kind: PendingKind::Work(deliver),
                },
            );
            if !send_to_replica(conn, replica, tag, &text) {
                fail_replica(conn, replica);
            }
        }
    }
}

/// The routing hash: program identity text for single requests (cache
/// affinity — every repeat of a program lands on the same replica),
/// whole payload for batch/experiment envelopes.
fn route_hash(frame: &Frame, text: &str) -> u64 {
    match frame {
        Frame::Single(req) => {
            let identity = match req.program() {
                crate::ProgramSpec::Bench { name } => name.as_str(),
                crate::ProgramSpec::Path { path } => path.as_str(),
                crate::ProgramSpec::Source { text } => text.as_str(),
            };
            fnv1a(identity.as_bytes())
        }
        _ => fnv1a(text.trim().as_bytes()),
    }
}

/// First live replica scanning from `hash % n` (wraps around).
fn route(conn: &Arc<ConnState>, hash: u64) -> Option<usize> {
    let n = conn.replicas.len();
    if n == 0 {
        return None;
    }
    let start = usize::try_from(hash % n as u64).expect("mod n fits usize");
    (0..n)
        .map(|i| (start + i) % n)
        .find(|&r| conn.replicas[r].alive.load(Ordering::Acquire))
}

/// Fans a control frame out to every live replica; the pending entry
/// completes when the last outstanding replica answers (or dies).
fn broadcast(conn: &Arc<ConnState>, tag: u32, text: &str, control: ControlFrame, deliver: Deliver) {
    let targets: Vec<usize> = (0..conn.replicas.len())
        .filter(|&r| conn.replicas[r].alive.load(Ordering::Acquire))
        .collect();
    if targets.is_empty() {
        deliver_reply(
            conn,
            &deliver,
            &error_frame(ErrorKind::Io, "no live replicas"),
        );
        return;
    }
    let kind = match control {
        ControlFrame::Stats => PendingKind::Stats {
            outstanding: targets.clone(),
            acc: StatsResponse::default(),
            deliver,
        },
        _ => PendingKind::Shutdown {
            outstanding: targets.clone(),
            deliver,
        },
    };
    conn.pending.lock().expect("no poisoning").insert(
        tag,
        Pending {
            replica: usize::MAX,
            hash: 0,
            payload: text.to_string(),
            kind,
        },
    );
    for r in targets {
        if !send_to_replica(conn, r, tag, text) {
            fail_replica(conn, r);
        }
    }
}

/// Writes one frame on replica `r`'s link, opening (and upgrading) the
/// link first if needed. Returns false when the link is dead or the
/// write failed — the caller runs failover.
fn send_to_replica(conn: &Arc<ConnState>, r: usize, tag: u32, text: &str) -> bool {
    let mut link = conn.links[r].lock().expect("no poisoning");
    if matches!(*link, Link::Closed) {
        match open_link(conn, r) {
            Some(stream) => *link = Link::Up(stream),
            None => {
                *link = Link::Dead;
                return false;
            }
        }
    }
    let Link::Up(stream) = &mut *link else {
        return false;
    };
    if write_frame(stream, tag, text.trim().as_bytes()).is_err() || stream.flush().is_err() {
        *link = Link::Dead;
        return false;
    }
    true
}

/// Connects to replica `r`, performs the NDJSON → `frame1` upgrade
/// handshake, and spawns the reply reader thread.
fn open_link(conn: &Arc<ConnState>, r: usize) -> Option<TcpStream> {
    let mut stream = TcpStream::connect(conn.replicas[r].addr).ok()?;
    stream.set_nodelay(true).ok()?;
    let upgrade = ControlFrame::Upgrade(crate::FrameProto::Frame1)
        .to_json()
        .encode();
    stream.write_all(upgrade.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    stream.flush().ok()?;
    let ack = read_line_raw(&mut stream)?;
    UpgradeAck::from_json(&json::parse(ack.trim()).ok()?).ok()?;
    stream.set_read_timeout(Some(READ_POLL)).ok()?;
    let reader_stream = stream.try_clone().ok()?;
    let conn = Arc::clone(conn);
    std::thread::Builder::new()
        .name("leqa-shard-link".to_string())
        .spawn(move || replica_reader(&conn, r, reader_stream))
        .ok()?;
    Some(stream)
}

/// Reads one `\n`-terminated line byte by byte (used only for the
/// once-per-link upgrade ack, where buffering past the line would
/// swallow the start of the frame stream).
fn read_line_raw(stream: &mut TcpStream) -> Option<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line).ok();
                }
                line.push(byte[0]);
                if line.len() > 4096 {
                    return None; // not an ack line
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Drains reply frames from replica `r` and completes pending entries;
/// EOF or a read error triggers failover.
fn replica_reader(conn: &Arc<ConnState>, r: usize, mut stream: TcpStream) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if conn.closed.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                fail_replica(conn, r);
                return;
            }
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next() {
                        Ok(Some((tag, payload))) => handle_replica_reply(conn, r, tag, &payload),
                        Ok(None) => break,
                        Err(_) => {
                            fail_replica(conn, r);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                fail_replica(conn, r);
                return;
            }
        }
    }
}

/// Completes (or advances) the pending entry a replica reply belongs to.
fn handle_replica_reply(conn: &Arc<ConnState>, r: usize, tag: u32, payload: &[u8]) {
    let text = String::from_utf8_lossy(payload).into_owned();
    let mut pending = conn.pending.lock().expect("no poisoning");
    let done = match pending.get_mut(&tag) {
        None => return, // stale (re-routed after this replica died)
        Some(entry) => match &mut entry.kind {
            PendingKind::Work(_) => true,
            PendingKind::Stats {
                outstanding, acc, ..
            } => {
                if let Ok(stats) = json::parse(&text)
                    .map_err(LeqaError::from)
                    .and_then(|doc| StatsResponse::from_json(&doc))
                {
                    acc.merge(&stats);
                }
                outstanding.retain(|&x| x != r);
                outstanding.is_empty()
            }
            PendingKind::Shutdown { outstanding, .. } => {
                outstanding.retain(|&x| x != r);
                outstanding.is_empty()
            }
        },
    };
    if !done {
        return;
    }
    let entry = pending.remove(&tag).expect("entry present");
    drop(pending);
    complete(conn, entry, Some(text));
}

/// Delivers a completed pending entry to the client.
fn complete(conn: &Arc<ConnState>, entry: Pending, reply: Option<String>) {
    match entry.kind {
        PendingKind::Work(deliver) => {
            let text =
                reply.unwrap_or_else(|| error_frame(ErrorKind::Io, "replica connection lost"));
            deliver_reply(conn, &deliver, &text);
        }
        PendingKind::Stats { acc, deliver, .. } => {
            deliver_reply(conn, &deliver, &acc.to_json().encode());
        }
        PendingKind::Shutdown { deliver, .. } => {
            deliver_reply(conn, &deliver, &ShutdownAck.to_json().encode());
            conn.shard.shutdown();
        }
    }
}

fn deliver_reply(conn: &Arc<ConnState>, deliver: &Deliver, reply: &str) {
    match deliver {
        Deliver::Tag(tag) => {
            let _ = conn
                .writer
                .lock()
                .expect("no poisoning")
                .deliver(*tag, reply);
        }
        Deliver::Sync(tx) => {
            let _ = tx.send(reply.to_string());
        }
    }
}

/// Failover: marks replica `r` dead fleet-wide, re-routes its in-flight
/// work frames to the next live replica (requests are pure computations,
/// so a resend is safe), and completes broadcasts without it.
fn fail_replica(conn: &Arc<ConnState>, r: usize) {
    conn.replicas[r].alive.store(false, Ordering::Release);
    *conn.links[r].lock().expect("no poisoning") = Link::Dead;
    let mut resend: Vec<(u32, String, usize)> = Vec::new();
    let mut completed: Vec<Pending> = Vec::new();
    {
        let mut pending = conn.pending.lock().expect("no poisoning");
        let tags: Vec<u32> = pending.keys().copied().collect();
        for tag in tags {
            let entry = pending.get_mut(&tag).expect("tag present");
            match &mut entry.kind {
                PendingKind::Work(_) => {
                    if entry.replica != r {
                        continue;
                    }
                    match route(conn, entry.hash) {
                        Some(next) => {
                            entry.replica = next;
                            resend.push((tag, entry.payload.clone(), next));
                        }
                        None => {
                            completed.push(pending.remove(&tag).expect("tag present"));
                        }
                    }
                }
                PendingKind::Stats { outstanding, .. }
                | PendingKind::Shutdown { outstanding, .. } => {
                    outstanding.retain(|&x| x != r);
                    if outstanding.is_empty() {
                        completed.push(pending.remove(&tag).expect("tag present"));
                    }
                }
            }
        }
    }
    for entry in completed {
        complete(conn, entry, None);
    }
    for (tag, payload, next) in resend {
        if !send_to_replica(conn, next, tag, &payload) {
            fail_replica(conn, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EstimateRequest, ProgramSpec, Request, Session};
    use std::io::BufReader;

    fn estimate_line(name: &str) -> String {
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
            .to_json()
            .encode()
    }

    fn shard_with_replicas(n: usize) -> (Shard, Vec<Server>) {
        let shard = Shard::new();
        let servers: Vec<Server> = (0..n)
            .map(|_| Server::new(Session::builder().build().expect("session")))
            .collect();
        for server in &servers {
            shard.spawn_replica(server.clone()).expect("replica spawns");
        }
        (shard, servers)
    }

    fn run_shard(shard: &Shard) -> (SocketAddr, std::thread::JoinHandle<Result<(), LeqaError>>) {
        let bound = shard.bind("127.0.0.1:0").expect("bind");
        let addr = bound.local_addr();
        let handle = std::thread::spawn(move || bound.run());
        (addr, handle)
    }

    struct LineClient {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl LineClient {
        fn connect(addr: SocketAddr) -> LineClient {
            let stream = TcpStream::connect(addr).expect("connect");
            LineClient {
                reader: BufReader::new(stream.try_clone().expect("clone")),
                stream,
            }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            writeln!(self.stream, "{line}").expect("write");
            self.stream.flush().expect("flush");
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("read");
            reply.trim_end_matches('\n').to_string()
        }
    }

    #[test]
    fn shard_routes_work_merges_stats_and_shuts_down() {
        let (shard, _servers) = shard_with_replicas(2);
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);

        // Byte-identity with a direct session, cold then warm: the
        // repeat must land on the same replica (cache affinity), so its
        // reply carries `profile_cached: true` exactly like the direct
        // session's second call.
        let direct = Session::builder().build().unwrap();
        let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
        let cold = direct.estimate(&req).unwrap().to_json().encode();
        let warm = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(client.roundtrip(&estimate_line("qft_8")), cold);
        assert_eq!(client.roundtrip(&estimate_line("qft_8")), warm);

        // Stats broadcast: merged across both replicas.
        let stats_reply = client.roundtrip(r#"{"cmd":"stats"}"#);
        let stats = StatsResponse::from_json(&json::parse(&stats_reply).unwrap()).unwrap();
        assert_eq!(stats.estimate, 2, "{stats_reply}");
        assert_eq!(stats.cache.cache_hits, 1, "affinity: {stats_reply}");
        assert!(stats.connections >= 2, "both replicas: {stats_reply}");

        let ack = client.roundtrip(r#"{"cmd":"shutdown"}"#);
        assert_eq!(ack, ShutdownAck.to_json().encode());
        handle.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn shard_fails_over_when_a_replica_dies_midstream() {
        let (shard, servers) = shard_with_replicas(2);
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);

        let r1 = client.roundtrip(&estimate_line("qft_8"));
        let r2 = client.roundtrip(&estimate_line("qft_16"));
        assert!(r1.contains("\"op\":\"estimate\""), "{r1}");
        assert!(r2.contains("\"op\":\"estimate\""), "{r2}");

        // Kill replica 0 out from under the shard. Requests racing the
        // replica's drain may see one `overloaded` refusal forwarded
        // verbatim; once the dropped link is observed, work re-routes to
        // the surviving replica.
        servers[0].shutdown();
        for name in ["qft_8", "qft_16", "qft_8"] {
            let mut reply = String::new();
            for _ in 0..100 {
                reply = client.roundtrip(&estimate_line(name));
                if reply.contains("\"op\":\"estimate\"") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert!(
                reply.contains("\"op\":\"estimate\""),
                "after failover: {reply}"
            );
        }

        let ack = client.roundtrip(r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
        handle.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn attach_replica_validates_addresses() {
        let shard = Shard::new();
        assert!(shard.attach_replica("not-an-addr").is_err());
        shard.attach_replica("127.0.0.1:9").expect("valid");
        assert_eq!(shard.replicas(), 1);
    }
}
