//! `leqa shard` — a sharded front-end over N daemon replicas.
//!
//! One listener accepts clients speaking the same wire protocols as a
//! single daemon (NDJSON by default, `frame1` after upgrade — see
//! [`crate::server`] and [`crate::frame`]); behind it, N replica daemons
//! (spawned in-process or attached by address) do the work. The
//! front-end:
//!
//! * **routes work frames by content**: the FNV-1a hash of the program's
//!   identity text (bench name, path, or inline source — the same
//!   content-hash discipline as the session profile cache) picks the
//!   replica, so repeats of a program always land on the replica whose
//!   cache is warm;
//! * **broadcasts control frames**: `{"cmd":"stats"}` fans out to every
//!   live replica and the [`StatsResponse`]s merge
//!   ([`StatsResponse::merge`]) into one fleet-wide snapshot;
//!   `{"cmd":"shutdown"}` stops the whole fleet, then the front-end;
//! * **fails over**: a replica that drops its connection is marked dead
//!   fleet-wide, its in-flight work frames re-route to the next live
//!   replica (requests are pure computations, so a resend is safe), and
//!   broadcasts complete without it. With no live replicas left,
//!   requests answer with a retryable `unavailable` error frame.
//! * **supervises the fleet**: [`BoundShard::run`] probes every live
//!   replica with a deadline-bounded `{"cmd":"stats"}` ping; a replica
//!   that stops answering is marked dead even if no request has touched
//!   it. When a restart factory is registered
//!   ([`Shard::supervise`]), dead in-process replicas are relaunched on
//!   a fresh port (re-warmed from the profile snapshot store when the
//!   factory builds its sessions with a `cache_dir`) under a **bounded
//!   restart budget** — once the budget is spent the fleet stays down
//!   and clients keep getting `unavailable`. Replica incarnations carry
//!   a generation counter, so a stale link dying cannot kill a freshly
//!   restarted replica.
//!
//! Replica links always speak `frame1` (the front-end upgrades each link
//! it opens), so one client connection pipelining frames keeps every
//! replica busy concurrently. Replies stay **byte-identical** to a
//! direct daemon: work replies are forwarded verbatim.

use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::dto::{ControlFrame, ErrorFrame, ShutdownAck, StatsResponse, UpgradeAck};
use crate::frame::{write_frame, FrameDecoder};
use crate::json;
use crate::server::{upgrade_request, Frame, Server, DEFAULT_READ_POLL_MS};
use crate::session::fnv1a;
use crate::{ErrorKind, LeqaError};

/// A factory the supervisor calls to build each replacement replica
/// (typically `Session::builder().cache_dir(…)` + `Server::new`, so the
/// replacement starts warm from the snapshot store).
pub type ReplicaFactory = dyn Fn() -> Result<Server, LeqaError> + Send + Sync;

/// One backend daemon the shard routes to.
struct Replica {
    /// Current address — replaced when the supervisor restarts an
    /// in-process replica on a fresh port.
    addr: Mutex<SocketAddr>,
    /// Cleared fleet-wide when any connection (or the supervisor's
    /// probe) sees this replica die; set again only by a supervised
    /// restart.
    alive: AtomicBool,
    /// Incarnation counter, bumped on every restart. Links remember the
    /// generation they opened against, so a stale link dying cannot
    /// mark a freshly restarted replica dead.
    generation: AtomicU64,
    /// The in-process server for spawned replicas (used to stop and
    /// join them on shutdown, replaced on restart); `None` for attached
    /// replicas.
    server: Mutex<Option<Server>>,
    /// Whether the supervisor may restart this replica (in-process
    /// spawns only; attached replicas have an external owner).
    supervised: bool,
}

impl Replica {
    fn addr(&self) -> SocketAddr {
        *self.addr.lock().expect("no poisoning")
    }
}

struct ShardInner {
    replicas: Mutex<Vec<Arc<Replica>>>,
    /// Join handles of in-process replica accept loops.
    replica_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    wake_addr: Mutex<Option<SocketAddr>>,
    /// Builds replacement replicas ([`Shard::supervise`]); `None` means
    /// dead replicas stay dead.
    factory: Mutex<Option<Arc<ReplicaFactory>>>,
    /// Remaining supervised restarts — the bounded give-up.
    restart_budget: AtomicU64,
    /// Replicas the supervisor has restarted (surfaced in merged
    /// `{"cmd":"stats"}` replies as `replicas_restarted`).
    replicas_restarted: AtomicU64,
    /// Read-poll period, ms (`0` = [`DEFAULT_READ_POLL_MS`]): socket
    /// poll granularity, and the base for the supervisor's probe pacing
    /// (probe period = 2× this, probe deadline = 4× this).
    read_poll_ms: AtomicU64,
}

/// The sharded front-end (see the [module docs](self)). Cheaply
/// cloneable (an `Arc` handle); clones share the replica set and
/// shutdown flag.
#[derive(Clone)]
pub struct Shard {
    inner: Arc<ShardInner>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("replicas", &self.replicas())
            .field("shutdown", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::new()
    }
}

impl Shard {
    /// An empty shard; add replicas with
    /// [`spawn_replica`](Self::spawn_replica) /
    /// [`attach_replica`](Self::attach_replica) before binding.
    #[must_use]
    pub fn new() -> Shard {
        Shard {
            inner: Arc::new(ShardInner {
                replicas: Mutex::new(Vec::new()),
                replica_threads: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                wake_addr: Mutex::new(None),
                factory: Mutex::new(None),
                restart_budget: AtomicU64::new(0),
                replicas_restarted: AtomicU64::new(0),
                read_poll_ms: AtomicU64::new(0),
            }),
        }
    }

    /// Registers a restart factory and a bounded restart budget: the
    /// supervisor inside [`BoundShard::run`] replaces each dead
    /// in-process replica with `factory()` bound to a fresh port, at
    /// most `budget` times fleet-wide. Build the factory's sessions with
    /// [`SessionBuilder::cache_dir`](crate::SessionBuilder::cache_dir)
    /// and replacements start warm from the profile snapshot store.
    /// Once the budget is spent, dead replicas stay dead and clients
    /// keep receiving retryable `unavailable` errors — the bounded
    /// give-up.
    pub fn supervise(
        &self,
        factory: impl Fn() -> Result<Server, LeqaError> + Send + Sync + 'static,
        budget: u64,
    ) {
        *self.inner.factory.lock().expect("no poisoning") = Some(Arc::new(factory));
        self.inner.restart_budget.store(budget, Ordering::Release);
    }

    /// Sets the read-poll period in milliseconds (`0` = the default,
    /// [`DEFAULT_READ_POLL_MS`]) — socket poll granularity and the base
    /// of the supervisor's probe pacing; pass the same value as the
    /// replicas' [`ServerConfig::read_poll_ms`](crate::ServerConfig::read_poll_ms)
    /// so one knob tunes the whole deployment.
    pub fn set_read_poll_ms(&self, ms: u64) {
        self.inner.read_poll_ms.store(ms, Ordering::Release);
    }

    /// Replicas the supervisor has restarted so far.
    #[must_use]
    pub fn replicas_restarted(&self) -> u64 {
        self.inner.replicas_restarted.load(Ordering::Relaxed)
    }

    fn read_poll(&self) -> Duration {
        let ms = match self.inner.read_poll_ms.load(Ordering::Acquire) {
            0 => DEFAULT_READ_POLL_MS,
            ms => ms,
        };
        Duration::from_millis(ms)
    }

    /// Spawns `server` as an in-process replica on a loopback port of
    /// the OS's choosing and returns its address. The replica's accept
    /// loop runs on its own thread; it is stopped and joined when the
    /// shard shuts down.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the replica cannot bind or its accept
    /// thread cannot be spawned.
    pub fn spawn_replica(&self, server: Server) -> Result<SocketAddr, LeqaError> {
        let bound = server.bind("127.0.0.1:0")?;
        let addr = bound.local_addr();
        let handle = std::thread::Builder::new()
            .name("leqa-shard-replica".to_string())
            .spawn(move || {
                let _ = bound.run();
            })
            .map_err(LeqaError::from)?;
        self.inner
            .replica_threads
            .lock()
            .expect("no poisoning")
            .push(handle);
        self.push_replica(Replica {
            addr: Mutex::new(addr),
            alive: AtomicBool::new(true),
            generation: AtomicU64::new(0),
            server: Mutex::new(Some(server)),
            supervised: true,
        });
        Ok(addr)
    }

    /// Attaches an already-running daemon at `addr` as a replica. The
    /// shard forwards shutdown to it but does not own its lifecycle.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Usage`] when `addr` is not a valid socket address.
    pub fn attach_replica(&self, addr: &str) -> Result<SocketAddr, LeqaError> {
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| LeqaError::usage(format!("invalid replica address `{addr}`")))?;
        self.push_replica(Replica {
            addr: Mutex::new(addr),
            alive: AtomicBool::new(true),
            generation: AtomicU64::new(0),
            server: Mutex::new(None),
            supervised: false,
        });
        Ok(addr)
    }

    /// Number of replicas (live or dead).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.inner.replicas.lock().expect("no poisoning").len()
    }

    /// Whether shutdown was requested. Once set it never clears.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Requests graceful shutdown: the accept loop stops, client
    /// connections drain, and spawned replicas are stopped and joined by
    /// [`BoundShard::run`]. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let wake = *self.inner.wake_addr.lock().expect("no poisoning");
        if let Some(addr) = wake {
            // Wake a blocked `accept`; the loop re-checks the flag
            // before serving whatever it accepted.
            let _ = TcpStream::connect_timeout(&addr, self.read_poll());
        }
    }

    /// Binds the front-end listener (port `0` lets the OS pick).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when the address cannot be bound.
    pub fn bind(&self, addr: &str) -> Result<BoundShard, LeqaError> {
        let listener = TcpListener::bind(addr)
            .map_err(LeqaError::from)
            .map_err(|e| e.context(format!("binding `{addr}`")))?;
        let local = listener.local_addr().map_err(LeqaError::from)?;
        *self.inner.wake_addr.lock().expect("no poisoning") = Some(local);
        Ok(BoundShard {
            shard: self.clone(),
            listener,
            local,
        })
    }

    fn push_replica(&self, replica: Replica) {
        self.inner
            .replicas
            .lock()
            .expect("no poisoning")
            .push(Arc::new(replica));
    }

    fn replica_snapshot(&self) -> Vec<Arc<Replica>> {
        self.inner.replicas.lock().expect("no poisoning").clone()
    }

    /// One supervisor pass: probe live replicas (deadline-bounded stats
    /// ping), restart dead supervised ones while the budget lasts.
    fn supervise_once(&self) {
        let deadline = self.read_poll() * 4;
        for replica in self.replica_snapshot() {
            if self.is_shutting_down() {
                return;
            }
            if replica.alive.load(Ordering::Acquire) {
                if !probe_replica(&replica, deadline) {
                    replica.alive.store(false, Ordering::Release);
                }
            } else if replica.supervised {
                self.try_restart(&replica);
            }
        }
    }

    /// Replaces a dead in-process replica with a fresh one from the
    /// restart factory, spending one unit of the bounded budget (a
    /// factory or bind failure still spends it — a persistently failing
    /// environment must converge on give-up, not loop forever).
    fn try_restart(&self, replica: &Arc<Replica>) {
        let factory = self.inner.factory.lock().expect("no poisoning").clone();
        let Some(factory) = factory else {
            return;
        };
        let budget_left = self
            .inner
            .restart_budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok();
        if !budget_left {
            return;
        }
        let Ok(server) = factory() else {
            return;
        };
        let Ok(bound) = server.bind("127.0.0.1:0") else {
            return;
        };
        let addr = bound.local_addr();
        let Ok(handle) = std::thread::Builder::new()
            .name("leqa-shard-replica".to_string())
            .spawn(move || {
                let _ = bound.run();
            })
        else {
            return;
        };
        self.inner
            .replica_threads
            .lock()
            .expect("no poisoning")
            .push(handle);
        {
            let mut slot = replica.server.lock().expect("no poisoning");
            // The old incarnation may be half-dead rather than gone;
            // make sure it is fully draining before it is dropped.
            if let Some(old) = slot.take() {
                old.shutdown();
            }
            *slot = Some(server);
        }
        *replica.addr.lock().expect("no poisoning") = addr;
        // Publish the new address *before* the generation bump: a link
        // that observes the new generation must connect to the new port.
        replica.generation.fetch_add(1, Ordering::AcqRel);
        replica.alive.store(true, Ordering::Release);
        self.inner
            .replicas_restarted
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Deadline-bounded health probe: connect, send `{"cmd":"stats"}`, and
/// require at least one full reply line back within the deadline.
fn probe_replica(replica: &Replica, deadline: Duration) -> bool {
    let addr = replica.addr();
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, deadline) else {
        return false;
    };
    if stream.set_read_timeout(Some(deadline)).is_err()
        || stream.set_write_timeout(Some(deadline)).is_err()
        || stream.write_all(b"{\"cmd\":\"stats\"}\n").is_err()
        || stream.flush().is_err()
    {
        return false;
    }
    let start = Instant::now();
    let mut buf = [0u8; 1024];
    loop {
        if start.elapsed() > deadline {
            return false;
        }
        match stream.read(&mut buf) {
            Ok(0) => return false,
            Ok(n) => {
                if buf[..n].contains(&b'\n') {
                    return true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // WouldBlock/TimedOut: the read timeout is the deadline.
            Err(_) => return false,
        }
    }
}

/// A [`Shard`] bound to its front-door address, ready to
/// [`run`](Self::run).
#[derive(Debug)]
pub struct BoundShard {
    shard: Shard,
    listener: TcpListener,
    local: SocketAddr,
}

impl BoundShard {
    /// The actual bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle to the shard (clone it to trigger [`Shard::shutdown`]
    /// from a supervising thread).
    #[must_use]
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Accepts and serves clients until shutdown, supervising the fleet
    /// the whole time (health probes + bounded restarts — see
    /// [`Shard::supervise`]); then joins client threads, stops spawned
    /// replicas and joins their accept loops.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Io`] when a client thread cannot be spawned.
    pub fn run(self) -> Result<(), LeqaError> {
        let supervisor = {
            let shard = self.shard.clone();
            std::thread::Builder::new()
                .name("leqa-shard-supervisor".to_string())
                .spawn(move || {
                    // Probe at 2× the read-poll period: fast enough that
                    // a dead replica is noticed within a few poll ticks,
                    // slow enough that probes stay background noise.
                    while !shard.is_shutting_down() {
                        std::thread::sleep(shard.read_poll() * 2);
                        if shard.is_shutting_down() {
                            break;
                        }
                        shard.supervise_once();
                    }
                })
                .map_err(LeqaError::from)?
        };
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shard.is_shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    std::thread::sleep(self.shard.read_poll());
                    continue;
                }
            };
            handles.retain(|h| !h.is_finished());
            let shard = self.shard.clone();
            let handle = std::thread::Builder::new()
                .name("leqa-shard-conn".to_string())
                .spawn(move || {
                    let _ = serve_client(&shard, stream);
                })
                .map_err(LeqaError::from)?;
            handles.push(handle);
        }
        drop(self.listener);
        for handle in handles {
            let _ = handle.join();
        }
        let _ = supervisor.join();
        // Stop spawned replicas (already draining when the shutdown came
        // over the wire — `Server::shutdown` is idempotent) and join
        // their accept loops.
        for replica in self.shard.replica_snapshot() {
            if let Some(server) = replica.server.lock().expect("no poisoning").as_ref() {
                server.shutdown();
            }
        }
        let threads: Vec<_> = self
            .shard
            .inner
            .replica_threads
            .lock()
            .expect("no poisoning")
            .drain(..)
            .collect();
        for handle in threads {
            let _ = handle.join();
        }
        Ok(())
    }
}

// ── Per-connection state ─────────────────────────────────────────────

/// How a reply reaches the client.
enum Deliver {
    /// Frame-mode client: write a frame carrying this tag.
    Tag(u32),
    /// Line-mode client: rendezvous with the (serial) client loop.
    Sync(mpsc::Sender<String>),
}

enum PendingKind {
    /// Forward the replica's reply verbatim.
    Work(Deliver),
    /// Merge every replica's stats, deliver the sum.
    Stats {
        outstanding: Vec<usize>,
        acc: StatsResponse,
        deliver: Deliver,
    },
    /// Deliver one ack once every replica acked, then stop the shard.
    Shutdown {
        outstanding: Vec<usize>,
        deliver: Deliver,
    },
}

struct Pending {
    /// Replica the frame was sent to (`usize::MAX` for broadcasts).
    replica: usize,
    /// Routing hash, for re-routing on failover.
    hash: u64,
    /// The frame payload, for re-sending on failover.
    payload: String,
    kind: PendingKind,
}

/// A replica link as seen by one client connection. Each open/dead link
/// remembers the replica *generation* it belongs to, so links to a dead
/// incarnation are replaced (and their late failures ignored) once the
/// supervisor restarts the replica.
enum Link {
    /// Not opened yet (links open lazily on first routed frame).
    Closed,
    /// Upgraded to `frame1`; a reader thread is draining replies.
    Up { stream: TcpStream, generation: u64 },
    /// This connection saw the link for that generation die.
    Dead { generation: u64 },
}

struct ClientWriter {
    stream: TcpStream,
    /// False until the client upgrades; selects line vs frame replies.
    frame_mode: bool,
}

impl ClientWriter {
    fn deliver(&mut self, tag: u32, reply: &str) -> std::io::Result<()> {
        if self.frame_mode {
            write_frame(&mut self.stream, tag, reply.as_bytes())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        } else {
            self.stream.write_all(reply.as_bytes())?;
            self.stream.write_all(b"\n")?;
        }
        self.stream.flush()
    }
}

struct ConnState {
    shard: Shard,
    /// Replica set snapshot (index-stable for this connection; the
    /// `alive` flags inside are the shared fleet-wide ones).
    replicas: Vec<Arc<Replica>>,
    writer: Mutex<ClientWriter>,
    links: Vec<Mutex<Link>>,
    pending: Mutex<HashMap<u32, Pending>>,
    /// Internal tags for line-mode requests.
    next_tag: AtomicU32,
    /// Set when the client loop exits; replica readers poll it.
    closed: AtomicBool,
}

impl ConnState {
    fn pending_is_empty(&self) -> bool {
        self.pending.lock().expect("no poisoning").is_empty()
    }
}

fn error_frame(kind: ErrorKind, message: impl Into<String>) -> String {
    ErrorFrame::new(LeqaError::new(kind, message))
        .to_json()
        .encode()
}

/// Serves one client connection end to end (line mode, then frame mode
/// after an upgrade).
fn serve_client(shard: &Shard, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shard.read_poll()))?;
    stream.set_nodelay(true)?;
    let replicas = shard.replica_snapshot();
    let conn = Arc::new(ConnState {
        shard: shard.clone(),
        links: (0..replicas.len())
            .map(|_| Mutex::new(Link::Closed))
            .collect(),
        replicas,
        writer: Mutex::new(ClientWriter {
            stream: stream.try_clone()?,
            frame_mode: false,
        }),
        pending: Mutex::new(HashMap::new()),
        next_tag: AtomicU32::new(0),
        closed: AtomicBool::new(false),
    });
    let result = serve_client_lines(&conn, stream);
    conn.closed.store(true, Ordering::Release);
    result
}

/// Line-mode client loop: strict one-reply-per-line rendezvous, exactly
/// like a single daemon's NDJSON engine. Hands off to
/// [`serve_client_frames`] on upgrade.
fn serve_client_lines(conn: &Arc<ConnState>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if let Some(proto) = upgrade_request(&line) {
                    let ack = UpgradeAck { proto }.to_json().encode();
                    {
                        let mut writer = conn.writer.lock().expect("no poisoning");
                        writer.deliver(0, &ack)?;
                        writer.frame_mode = true;
                    }
                    let residual = reader.buffer().to_vec();
                    return serve_client_frames(conn, reader.into_inner(), &residual);
                }
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let reply = request_reply(conn, trimmed);
                    conn.writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(0, &reply)?;
                    if conn.shard.is_shutting_down() {
                        return Ok(());
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if conn.shard.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let reply = error_frame(ErrorKind::Json, "line is not valid UTF-8");
                return conn.writer.lock().expect("no poisoning").deliver(0, &reply);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Frame-mode client loop: decode client frames, submit each with its
/// tag; replica readers deliver replies directly (out of order).
fn serve_client_frames(
    conn: &Arc<ConnState>,
    mut stream: TcpStream,
    residual: &[u8],
) -> std::io::Result<()> {
    let mut decoder = FrameDecoder::new();
    decoder.push(residual);
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match decoder.next() {
                Ok(Some((tag, payload))) => submit_client_frame(conn, tag, payload),
                Ok(None) => break,
                Err(fe) => {
                    let reply = ErrorFrame::new(fe.error).to_json().encode();
                    let _ = conn
                        .writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(fe.tag.unwrap_or(0), &reply);
                    return Ok(());
                }
            }
        }
        if conn.shard.is_shutting_down() && conn.pending_is_empty() {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if let Err(fe) = decoder.finish() {
                    let reply = ErrorFrame::new(fe.error).to_json().encode();
                    let _ = conn
                        .writer
                        .lock()
                        .expect("no poisoning")
                        .deliver(fe.tag.unwrap_or(0), &reply);
                }
                // Let in-flight replies drain before tearing down the
                // connection (replica readers deliver them directly).
                while !conn.pending_is_empty() && !conn.shard.is_shutting_down() {
                    std::thread::sleep(conn.shard.read_poll());
                }
                return Ok(());
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Line-mode request: submit under an internal tag and wait for the
/// (single) reply, preserving the NDJSON one-reply-per-line-in-order
/// contract.
fn request_reply(conn: &Arc<ConnState>, text: &str) -> String {
    let (tx, rx) = mpsc::channel();
    let tag = conn.next_tag.fetch_add(1, Ordering::Relaxed);
    submit(conn, tag, text.to_string(), Deliver::Sync(tx));
    rx.recv()
        .unwrap_or_else(|_| error_frame(ErrorKind::Internal, "reply channel dropped"))
}

/// Frame-mode request: the client's tag is the routing identity; a tag
/// already in flight is refused (its reply could not be matched).
fn submit_client_frame(conn: &Arc<ConnState>, tag: u32, payload: Vec<u8>) {
    let text = match String::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            let reply = error_frame(ErrorKind::Json, "frame payload is not valid UTF-8");
            let _ = conn
                .writer
                .lock()
                .expect("no poisoning")
                .deliver(tag, &reply);
            return;
        }
    };
    if conn
        .pending
        .lock()
        .expect("no poisoning")
        .contains_key(&tag)
    {
        let reply = error_frame(
            ErrorKind::Json,
            format!("tag {tag} is already in flight on this connection"),
        );
        let _ = conn
            .writer
            .lock()
            .expect("no poisoning")
            .deliver(tag, &reply);
        return;
    }
    submit(conn, tag, text, Deliver::Tag(tag));
}

/// Classifies and routes one request: work frames go to the replica
/// owning the program's content hash; control frames broadcast.
fn submit(conn: &Arc<ConnState>, tag: u32, text: String, deliver: Deliver) {
    let frame = match Frame::parse(text.trim()) {
        Ok(frame) => frame,
        Err(e) => {
            deliver_reply(conn, &deliver, &ErrorFrame::new(e).to_json().encode());
            return;
        }
    };
    match frame {
        Frame::Control(ControlFrame::Upgrade(_)) => {
            let reply = match deliver {
                Deliver::Tag(_) => {
                    error_frame(ErrorKind::Json, "connection already upgraded to frame1")
                }
                Deliver::Sync(_) => error_frame(
                    ErrorKind::Json,
                    "`upgrade` is only available on the TCP transport",
                ),
            };
            deliver_reply(conn, &deliver, &reply);
        }
        Frame::Control(control) => broadcast(conn, tag, &text, control, deliver),
        work => {
            let hash = route_hash(&work, &text);
            let Some(replica) = route(conn, hash) else {
                deliver_reply(
                    conn,
                    &deliver,
                    &error_frame(
                        ErrorKind::Unavailable,
                        "no live replicas (fleet dead or restarting); retry",
                    ),
                );
                return;
            };
            conn.pending.lock().expect("no poisoning").insert(
                tag,
                Pending {
                    replica,
                    hash,
                    payload: text.clone(),
                    kind: PendingKind::Work(deliver),
                },
            );
            if !send_to_replica(conn, replica, tag, &text) {
                fail_current(conn, replica);
            }
        }
    }
}

/// The routing hash: program identity text for single requests (cache
/// affinity — every repeat of a program lands on the same replica),
/// whole payload for batch/experiment envelopes.
fn route_hash(frame: &Frame, text: &str) -> u64 {
    match frame {
        Frame::Single(req) => {
            let identity = match req.program() {
                crate::ProgramSpec::Bench { name } => name.as_str(),
                crate::ProgramSpec::Path { path } => path.as_str(),
                crate::ProgramSpec::Source { text } => text.as_str(),
            };
            fnv1a(identity.as_bytes())
        }
        _ => fnv1a(text.trim().as_bytes()),
    }
}

/// First live replica scanning from `hash % n` (wraps around).
fn route(conn: &Arc<ConnState>, hash: u64) -> Option<usize> {
    let n = conn.replicas.len();
    if n == 0 {
        return None;
    }
    let start = usize::try_from(hash % n as u64).expect("mod n fits usize");
    (0..n)
        .map(|i| (start + i) % n)
        .find(|&r| conn.replicas[r].alive.load(Ordering::Acquire))
}

/// Fans a control frame out to every live replica; the pending entry
/// completes when the last outstanding replica answers (or dies).
fn broadcast(conn: &Arc<ConnState>, tag: u32, text: &str, control: ControlFrame, deliver: Deliver) {
    let targets: Vec<usize> = (0..conn.replicas.len())
        .filter(|&r| conn.replicas[r].alive.load(Ordering::Acquire))
        .collect();
    if targets.is_empty() {
        deliver_reply(
            conn,
            &deliver,
            &error_frame(
                ErrorKind::Unavailable,
                "no live replicas (fleet dead or restarting); retry",
            ),
        );
        return;
    }
    let kind = match control {
        ControlFrame::Stats => PendingKind::Stats {
            outstanding: targets.clone(),
            acc: StatsResponse::default(),
            deliver,
        },
        _ => PendingKind::Shutdown {
            outstanding: targets.clone(),
            deliver,
        },
    };
    conn.pending.lock().expect("no poisoning").insert(
        tag,
        Pending {
            replica: usize::MAX,
            hash: 0,
            payload: text.to_string(),
            kind,
        },
    );
    for r in targets {
        if !send_to_replica(conn, r, tag, text) {
            fail_current(conn, r);
        }
    }
}

/// Writes one frame on replica `r`'s link, opening (and upgrading) the
/// link first if needed — including *re*-opening a link whose replica
/// has been restarted since this connection last saw it (newer
/// generation, alive again). Returns false when the link is dead or the
/// write failed — the caller runs failover.
fn send_to_replica(conn: &Arc<ConnState>, r: usize, tag: u32, text: &str) -> bool {
    let replica = &conn.replicas[r];
    let mut link = conn.links[r].lock().expect("no poisoning");
    let current = replica.generation.load(Ordering::Acquire);
    let reopen = match &*link {
        Link::Closed => true,
        // A link to an older incarnation: dead or not, the stream (if
        // any) points at a stale port — reconnect to the restarted
        // replica.
        Link::Up { generation, .. } | Link::Dead { generation } => *generation < current,
    };
    if reopen && replica.alive.load(Ordering::Acquire) {
        match open_link(conn, r, current) {
            Some(stream) => {
                *link = Link::Up {
                    stream,
                    generation: current,
                }
            }
            None => {
                *link = Link::Dead {
                    generation: current,
                };
                return false;
            }
        }
    }
    let Link::Up { stream, .. } = &mut *link else {
        return false;
    };
    if write_frame(stream, tag, text.trim().as_bytes()).is_err() || stream.flush().is_err() {
        *link = Link::Dead {
            generation: current,
        };
        return false;
    }
    true
}

/// Connects to replica `r` (generation `generation`), performs the
/// NDJSON → `frame1` upgrade handshake, and spawns the reply reader
/// thread.
fn open_link(conn: &Arc<ConnState>, r: usize, generation: u64) -> Option<TcpStream> {
    let mut stream = TcpStream::connect(conn.replicas[r].addr()).ok()?;
    stream.set_nodelay(true).ok()?;
    let upgrade = ControlFrame::Upgrade(crate::FrameProto::Frame1)
        .to_json()
        .encode();
    stream.write_all(upgrade.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    stream.flush().ok()?;
    let ack = read_line_raw(&mut stream)?;
    UpgradeAck::from_json(&json::parse(ack.trim()).ok()?).ok()?;
    stream.set_read_timeout(Some(conn.shard.read_poll())).ok()?;
    let reader_stream = stream.try_clone().ok()?;
    let conn = Arc::clone(conn);
    std::thread::Builder::new()
        .name("leqa-shard-link".to_string())
        .spawn(move || replica_reader(&conn, r, generation, reader_stream))
        .ok()?;
    Some(stream)
}

/// Reads one `\n`-terminated line byte by byte (used only for the
/// once-per-link upgrade ack, where buffering past the line would
/// swallow the start of the frame stream).
fn read_line_raw(stream: &mut TcpStream) -> Option<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line).ok();
                }
                line.push(byte[0]);
                if line.len() > 4096 {
                    return None; // not an ack line
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

/// Drains reply frames from replica `r` (generation `generation`) and
/// completes pending entries; EOF or a read error triggers failover for
/// that generation.
fn replica_reader(conn: &Arc<ConnState>, r: usize, generation: u64, mut stream: TcpStream) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if conn.closed.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                fail_replica(conn, r, generation);
                return;
            }
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next() {
                        Ok(Some((tag, payload))) => handle_replica_reply(conn, r, tag, &payload),
                        Ok(None) => break,
                        Err(_) => {
                            fail_replica(conn, r, generation);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                fail_replica(conn, r, generation);
                return;
            }
        }
    }
}

/// Completes (or advances) the pending entry a replica reply belongs to.
fn handle_replica_reply(conn: &Arc<ConnState>, r: usize, tag: u32, payload: &[u8]) {
    let text = match String::from_utf8(payload.to_vec()) {
        Ok(text) => text,
        Err(_) => {
            // The protocol is ASCII JSON, so a non-UTF-8 reply can only
            // be transport corruption (e.g. injected byte flips):
            // resend the request instead of forwarding garbage.
            resend_pending(conn, r, tag);
            return;
        }
    };
    let mut pending = conn.pending.lock().expect("no poisoning");
    let done = match pending.get_mut(&tag) {
        None => return, // stale (re-routed after this replica died)
        Some(entry) => match &mut entry.kind {
            PendingKind::Work(_) => true,
            PendingKind::Stats {
                outstanding, acc, ..
            } => {
                if let Ok(stats) = json::parse(&text)
                    .map_err(LeqaError::from)
                    .and_then(|doc| StatsResponse::from_json(&doc))
                {
                    acc.merge(&stats);
                }
                outstanding.retain(|&x| x != r);
                outstanding.is_empty()
            }
            PendingKind::Shutdown { outstanding, .. } => {
                outstanding.retain(|&x| x != r);
                outstanding.is_empty()
            }
        },
    };
    if !done {
        return;
    }
    let entry = pending.remove(&tag).expect("entry present");
    drop(pending);
    complete(conn, entry, Some(text));
}

/// Delivers a completed pending entry to the client.
fn complete(conn: &Arc<ConnState>, entry: Pending, reply: Option<String>) {
    match entry.kind {
        PendingKind::Work(deliver) => {
            let text = reply.unwrap_or_else(|| {
                error_frame(
                    ErrorKind::Unavailable,
                    "replica connection lost with no live replica to fail over to; retry",
                )
            });
            deliver_reply(conn, &deliver, &text);
        }
        PendingKind::Stats {
            mut acc, deliver, ..
        } => {
            // The replicas each report 0 restarts (the supervisor lives
            // here, not there); the fleet-wide count is the shard's.
            acc.replicas_restarted += conn.shard.replicas_restarted();
            deliver_reply(conn, &deliver, &acc.to_json().encode());
        }
        PendingKind::Shutdown { deliver, .. } => {
            deliver_reply(conn, &deliver, &ShutdownAck.to_json().encode());
            conn.shard.shutdown();
        }
    }
}

fn deliver_reply(conn: &Arc<ConnState>, deliver: &Deliver, reply: &str) {
    match deliver {
        Deliver::Tag(tag) => {
            let _ = conn
                .writer
                .lock()
                .expect("no poisoning")
                .deliver(*tag, reply);
        }
        Deliver::Sync(tx) => {
            let _ = tx.send(reply.to_string());
        }
    }
}

/// Failover: marks replica `r` dead fleet-wide (only when the failing
/// link belongs to its *current* incarnation — a stale link dying says
/// nothing about a restarted replica), re-routes its in-flight work
/// frames to the next live replica (requests are pure computations, so a
/// resend is safe), and completes broadcasts without it.
fn fail_replica(conn: &Arc<ConnState>, r: usize, generation: u64) {
    let replica = &conn.replicas[r];
    if replica.generation.load(Ordering::Acquire) == generation {
        replica.alive.store(false, Ordering::Release);
    }
    {
        let mut link = conn.links[r].lock().expect("no poisoning");
        // Never clobber a link that has already moved on to a newer
        // incarnation.
        let stale = match &*link {
            Link::Closed => true,
            Link::Up { generation: g, .. } | Link::Dead { generation: g } => *g <= generation,
        };
        if stale {
            *link = Link::Dead { generation };
        }
    }
    let mut resend: Vec<(u32, String, usize)> = Vec::new();
    let mut completed: Vec<Pending> = Vec::new();
    {
        let mut pending = conn.pending.lock().expect("no poisoning");
        let tags: Vec<u32> = pending.keys().copied().collect();
        for tag in tags {
            let entry = pending.get_mut(&tag).expect("tag present");
            match &mut entry.kind {
                PendingKind::Work(_) => {
                    if entry.replica != r {
                        continue;
                    }
                    match route(conn, entry.hash) {
                        Some(next) => {
                            entry.replica = next;
                            resend.push((tag, entry.payload.clone(), next));
                        }
                        None => {
                            completed.push(pending.remove(&tag).expect("tag present"));
                        }
                    }
                }
                PendingKind::Stats { outstanding, .. }
                | PendingKind::Shutdown { outstanding, .. } => {
                    outstanding.retain(|&x| x != r);
                    if outstanding.is_empty() {
                        completed.push(pending.remove(&tag).expect("tag present"));
                    }
                }
            }
        }
    }
    for entry in completed {
        complete(conn, entry, None);
    }
    for (tag, payload, next) in resend {
        if !send_to_replica(conn, next, tag, &payload) {
            fail_current(conn, next);
        }
    }
}

/// Fails replica `r`'s *current* incarnation (used where the failure was
/// observed on a just-attempted send rather than an existing link).
fn fail_current(conn: &Arc<ConnState>, r: usize) {
    let generation = conn.replicas[r].generation.load(Ordering::Acquire);
    fail_replica(conn, r, generation);
}

/// Resends a pending entry's payload to replica `r` after a corrupt
/// reply (the request is a pure computation, so re-execution is safe).
/// Work entries resend only if they are still routed to `r`; broadcast
/// entries resend whenever `r` is still outstanding.
fn resend_pending(conn: &Arc<ConnState>, r: usize, tag: u32) {
    let payload = {
        let pending = conn.pending.lock().expect("no poisoning");
        pending.get(&tag).and_then(|entry| match &entry.kind {
            PendingKind::Work(_) => (entry.replica == r).then(|| entry.payload.clone()),
            PendingKind::Stats { outstanding, .. } | PendingKind::Shutdown { outstanding, .. } => {
                outstanding.contains(&r).then(|| entry.payload.clone())
            }
        })
    };
    if let Some(payload) = payload {
        if !send_to_replica(conn, r, tag, &payload) {
            fail_current(conn, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EstimateRequest, ProgramSpec, Request, Session};
    use std::io::BufReader;

    fn estimate_line(name: &str) -> String {
        Request::Estimate(EstimateRequest::new(ProgramSpec::bench(name)))
            .to_json()
            .encode()
    }

    fn shard_with_replicas(n: usize) -> (Shard, Vec<Server>) {
        let shard = Shard::new();
        let servers: Vec<Server> = (0..n)
            .map(|_| Server::new(Session::builder().build().expect("session")))
            .collect();
        for server in &servers {
            shard.spawn_replica(server.clone()).expect("replica spawns");
        }
        (shard, servers)
    }

    fn run_shard(shard: &Shard) -> (SocketAddr, std::thread::JoinHandle<Result<(), LeqaError>>) {
        let bound = shard.bind("127.0.0.1:0").expect("bind");
        let addr = bound.local_addr();
        let handle = std::thread::spawn(move || bound.run());
        (addr, handle)
    }

    struct LineClient {
        reader: BufReader<TcpStream>,
        stream: TcpStream,
    }

    impl LineClient {
        fn connect(addr: SocketAddr) -> LineClient {
            let stream = TcpStream::connect(addr).expect("connect");
            LineClient {
                reader: BufReader::new(stream.try_clone().expect("clone")),
                stream,
            }
        }

        fn roundtrip(&mut self, line: &str) -> String {
            writeln!(self.stream, "{line}").expect("write");
            self.stream.flush().expect("flush");
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("read");
            reply.trim_end_matches('\n').to_string()
        }
    }

    #[test]
    fn shard_routes_work_merges_stats_and_shuts_down() {
        let (shard, _servers) = shard_with_replicas(2);
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);

        // Byte-identity with a direct session, cold then warm: the
        // repeat must land on the same replica (cache affinity), so its
        // reply carries `profile_cached: true` exactly like the direct
        // session's second call.
        let direct = Session::builder().build().unwrap();
        let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
        let cold = direct.estimate(&req).unwrap().to_json().encode();
        let warm = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(client.roundtrip(&estimate_line("qft_8")), cold);
        assert_eq!(client.roundtrip(&estimate_line("qft_8")), warm);

        // Stats broadcast: merged across both replicas.
        let stats_reply = client.roundtrip(r#"{"cmd":"stats"}"#);
        let stats = StatsResponse::from_json(&json::parse(&stats_reply).unwrap()).unwrap();
        assert_eq!(stats.estimate, 2, "{stats_reply}");
        assert_eq!(stats.cache.cache_hits, 1, "affinity: {stats_reply}");
        assert!(stats.connections >= 2, "both replicas: {stats_reply}");

        let ack = client.roundtrip(r#"{"cmd":"shutdown"}"#);
        assert_eq!(ack, ShutdownAck.to_json().encode());
        handle.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn shard_fails_over_when_a_replica_dies_midstream() {
        let (shard, servers) = shard_with_replicas(2);
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);

        let r1 = client.roundtrip(&estimate_line("qft_8"));
        let r2 = client.roundtrip(&estimate_line("qft_16"));
        assert!(r1.contains("\"op\":\"estimate\""), "{r1}");
        assert!(r2.contains("\"op\":\"estimate\""), "{r2}");

        // Kill replica 0 out from under the shard. Requests racing the
        // replica's drain may see one `overloaded` refusal forwarded
        // verbatim; once the dropped link is observed, work re-routes to
        // the surviving replica.
        servers[0].shutdown();
        for name in ["qft_8", "qft_16", "qft_8"] {
            let mut reply = String::new();
            for _ in 0..100 {
                reply = client.roundtrip(&estimate_line(name));
                if reply.contains("\"op\":\"estimate\"") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert!(
                reply.contains("\"op\":\"estimate\""),
                "after failover: {reply}"
            );
        }

        let ack = client.roundtrip(r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
        handle.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn supervisor_restarts_dead_replicas_warm_from_the_store() {
        let dir = std::env::temp_dir().join(format!("leqa-shard-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shard = Shard::new();
        shard.set_read_poll_ms(10); // fast probes so the test converges quickly
        let server = Server::new(
            Session::builder()
                .cache_dir(&dir)
                .build()
                .expect("session with store"),
        );
        shard.spawn_replica(server.clone()).expect("replica spawns");
        let factory_dir = dir.clone();
        shard.supervise(
            move || {
                Ok(Server::new(
                    Session::builder().cache_dir(&factory_dir).build()?,
                ))
            },
            4,
        );
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);

        // Warm the snapshot store through the first incarnation, and pin
        // the byte-stable direct replies for later comparison.
        let direct = Session::builder().build().unwrap();
        let req = EstimateRequest::new(ProgramSpec::bench("qft_8"));
        let cold = direct.estimate(&req).unwrap().to_json().encode();
        let warm = direct.estimate(&req).unwrap().to_json().encode();
        assert_eq!(client.roundtrip(&estimate_line("qft_8")), cold);

        // Kill the only replica out from under the shard; the supervisor
        // must notice (probe failure or link death) and restart it.
        server.shutdown();
        let mut reply = String::new();
        for _ in 0..500 {
            reply = client.roundtrip(&estimate_line("qft_8"));
            if reply.contains("\"op\":\"estimate\"") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            reply == cold || reply == warm,
            "restarted replica answers byte-identically: {reply}"
        );

        // The replacement came up warm from the snapshot store: it
        // served a seen program without building a single profile.
        let stats_reply = client.roundtrip(r#"{"cmd":"stats"}"#);
        let stats = StatsResponse::from_json(&json::parse(&stats_reply).unwrap()).unwrap();
        assert!(stats.replicas_restarted >= 1, "{stats_reply}");
        assert_eq!(stats.replicas_restarted, shard.replicas_restarted());
        assert!(stats.store_hits >= 1, "warm from store: {stats_reply}");
        assert_eq!(
            stats.cache.profile_builds, 0,
            "no rebuilds after restart: {stats_reply}"
        );

        let ack = client.roundtrip(r#"{"cmd":"shutdown"}"#);
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
        handle.join().expect("no panic").expect("clean exit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_fleet_without_a_factory_answers_unavailable() {
        let shard = Shard::new();
        shard.set_read_poll_ms(5);
        // Port 9 (discard) on loopback: nothing listens, connects are
        // refused immediately — a permanently dead attached replica.
        shard.attach_replica("127.0.0.1:9").expect("valid address");
        let (addr, handle) = run_shard(&shard);
        let mut client = LineClient::connect(addr);
        let reply = client.roundtrip(&estimate_line("qft_8"));
        let frame = ErrorFrame::from_json(&json::parse(&reply).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Unavailable, "{reply}");
        // Unavailable is the retryable give-up: it stays Unavailable, it
        // never escalates or crashes the front-end.
        let again = client.roundtrip(&estimate_line("qft_8"));
        let frame = ErrorFrame::from_json(&json::parse(&again).unwrap()).unwrap();
        assert_eq!(frame.error.kind(), ErrorKind::Unavailable, "{again}");
        drop(client);
        shard.shutdown();
        handle.join().expect("no panic").expect("clean exit");
    }

    #[test]
    fn attach_replica_validates_addresses() {
        let shard = Shard::new();
        assert!(shard.attach_replica("not-an-addr").is_err());
        shard.attach_replica("127.0.0.1:9").expect("valid");
        assert_eq!(shard.replicas(), 1);
    }
}
