//! `leqa-api` — the service-grade request/response façade over the LEQA
//! estimator (the workspace's *only* supported application entry point;
//! re-exported as `leqa_repro::api`).
//!
//! The paper's pitch is that latency estimation is cheap enough to sit
//! inside an optimisation loop. At production scale that means LEQA must
//! be callable as a *service*: typed requests in, versioned
//! machine-readable responses out, one entry point instead of a scatter
//! of free functions. This crate provides exactly that:
//!
//! * [`Session`] — owns fabric dimensions, physical parameters and
//!   estimator options (via [`SessionBuilder`]), and caches each loaded
//!   program's [`leqa::ProfileData`] keyed by a content hash of its
//!   canonical circuit text, so repeat requests never rebuild profiles.
//!   `Send + Sync` with every endpoint on `&self`: one session serves
//!   all your worker threads (sharded cache, atomic counters — see
//!   `API.md`'s threading contract).
//! * Request/response DTOs ([`EstimateRequest`] → [`EstimateResponse`],
//!   sweep/zones/compare/map, and [`Request`]/[`Response`] envelopes) —
//!   plain structs carrying a `schema_version`, encoded and decoded by
//!   the dependency-free [`json`] module.
//! * [`Session::batch`] — N requests in, N result slots out, programs
//!   deduplicated so each profile is built exactly once; fans out over
//!   worker threads with the `parallel` feature.
//! * [`LeqaError`] — the unified error taxonomy ([`ErrorKind`] + context
//!   chain + stable exit codes) every layer's failures converge to.
//! * [`experiment`] — the declarative design-space engine: a
//!   [`ScenarioSpec`] declares a cartesian grid over workloads, fabric
//!   sizes, physical-parameter variants and router/movement variants;
//!   [`Session::batch_experiment`] (or the streaming
//!   [`ExperimentRunner`]) executes it through the profile cache and the
//!   sweep engine, emitting one byte-stable NDJSON row per cell plus a
//!   summary record.
//! * [`server`] — the persistent service daemon behind `leqa serve`:
//!   newline-delimited JSON over stdio or TCP, every connection sharing
//!   one resident [`Session`] (warm cache, persistent worker pool),
//!   with admission control, a `stats` control endpoint and graceful
//!   shutdown. Wire reference in `SERVER.md`.
//!
//! The full wire schema, the error/exit-code table, and a migration
//! guide from the old free functions live in `API.md` at the workspace
//! root.
//!
//! # Example
//!
//! ```
//! use leqa_api::{EstimateRequest, ProgramSpec, Session};
//!
//! # fn main() -> Result<(), leqa_api::LeqaError> {
//! let session = Session::builder().build()?; // 60×60, Table 1 params
//! let response = session.estimate(&EstimateRequest::new(
//!     ProgramSpec::source(".qubits 2\ncnot 0 1\nh 0\n"),
//! ))?;
//! assert!(response.latency_us > 0.0);
//!
//! // Same program again: served from the profile cache.
//! let again = session.estimate(&EstimateRequest::new(
//!     ProgramSpec::source(".qubits 2\ncnot 0 1\nh 0\n"),
//! ))?;
//! assert!(again.profile_cached);
//! assert_eq!(again.latency_us, response.latency_us);
//!
//! // Every DTO speaks versioned JSON.
//! let wire = response.to_json().encode();
//! assert!(wire.starts_with("{\"schema_version\":1,"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dto;
mod error;
pub mod experiment;
pub mod fabricmap;
pub mod faults;
pub mod frame;
pub mod json;
pub mod render;
pub mod server;
mod session;
pub mod shard;
pub mod store;

pub use experiment::{
    AxisFilter, CellMetrics, CellRow, DensityStats, ExperimentMode, ExperimentPlan,
    ExperimentResponse, ExperimentRunner, ExperimentSummary, FabricEntry, MonteCarloSpec,
    MonteCarloSummary, ParamVariant, ResultSelect, ScenarioSpec,
};
pub use fabricmap::{FabricMapSpec, OverlaySpec, RandomDefects};

pub use dto::{
    BatchRequest, BatchResponse, CompareRequest, CompareResponse, ControlFrame, ErrorFrame,
    EstimateRequest, EstimateResponse, FabricSpec, FrameProto, MapRequest, MapResponse,
    ProgramSpec, ProgramSummary, Request, Response, ShutdownAck, StatsResponse, SweepPointDto,
    SweepRequest, SweepResponse, UpgradeAck, ZoneRowDto, ZonesRequest, ZonesResponse,
    SCHEMA_VERSION,
};
pub use error::{ErrorKind, LeqaError};
pub use faults::{FaultAction, FaultDecision, FaultInjector, FaultPlan};
pub use frame::{write_frame, FrameDecoder, FrameError, FRAME1, MAX_FRAME_PAYLOAD};
pub use server::{BoundServer, Frame, Server, ServerConfig};
pub use session::{
    CacheStats, ProgramHandle, Session, SessionBuilder, StoreStats, DEFAULT_STREAMING_THRESHOLD,
};
pub use shard::{BoundShard, Shard};
pub use store::{ProfileStore, SnapshotError};
