//! The `frame1` binary framing codec: length-prefixed, tagged frames
//! carrying the existing byte-stable JSON payloads.
//!
//! NDJSON (one JSON document per line) stays the daemon's default and
//! debug wire format — and the golden-test anchor — but it forces one
//! parse/serialize round trip per request *and* strict request/response
//! alternation per connection. The `frame1` protocol removes only the
//! transport constraint: a connection that sends
//! `{"cmd":"upgrade","proto":"frame1"}` switches (after the NDJSON ack
//! line) to length-prefixed binary frames
//!
//! ```text
//! [u32 len (LE)] [u32 tag (LE)] [len bytes of payload]
//! ```
//!
//! where the payload is exactly the JSON document that would have been
//! one NDJSON line (no trailing newline). The `tag` is chosen freely by
//! the client and echoed verbatim on the response frame; because every
//! response carries its request's tag, the server may complete frames
//! **out of order** and the client may keep many requests in flight.
//! Payload bytes are byte-identical to NDJSON mode and to direct
//! [`Session`](crate::Session) calls — only the transport changes.
//!
//! Framing violations (oversized length, truncated stream) are
//! protocol-fatal: the server answers with one error frame and closes,
//! mirroring the NDJSON invalid-line discipline. The length cap
//! ([`MAX_FRAME_PAYLOAD`]) plays the same resource-bounding role as the
//! JSON parser's depth cap: malformed or hostile input fails fast with a
//! typed [`ErrorKind::Json`] error instead of an allocation blow-up.

use std::io::Write;

use crate::error::{ErrorKind, LeqaError};

/// Protocol name clients pass in `{"cmd":"upgrade","proto":...}`.
pub const FRAME1: &str = "frame1";

/// Hard cap on a single frame's payload size (16 MiB). Larger `len`
/// prefixes are rejected before any payload allocation — the framing
/// analogue of the JSON depth cap.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// Bytes of `[len][tag]` prefix in front of every payload.
pub const FRAME_HEADER: usize = 8;

/// A framing-layer error: the typed error plus, when the offending
/// frame's header was readable, the tag it carried (so error replies can
/// be routed back to the right in-flight request).
#[derive(Debug)]
pub struct FrameError {
    /// Tag of the offending frame, when the header was decodable.
    pub tag: Option<u32>,
    /// The underlying typed error (kind [`ErrorKind::Json`]).
    pub error: LeqaError,
}

impl FrameError {
    fn new(tag: Option<u32>, message: impl Into<String>) -> Self {
        FrameError {
            tag,
            error: LeqaError::new(ErrorKind::Json, message),
        }
    }
}

/// Writes one `[len][tag][payload]` frame. The payload must fit
/// [`MAX_FRAME_PAYLOAD`]; the daemon's own replies always do (they are
/// single JSON documents), so an oversized write is a caller bug
/// surfaced as [`ErrorKind::Internal`].
///
/// # Errors
///
/// I/O errors from `w`, or `Internal` if `payload` exceeds the cap.
pub fn write_frame(w: &mut dyn Write, tag: u32, payload: &[u8]) -> Result<(), LeqaError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_PAYLOAD)
        .ok_or_else(|| {
            LeqaError::internal(format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
                payload.len()
            ))
        })?;
    let mut header = [0u8; FRAME_HEADER];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&tag.to_le_bytes());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .map_err(|e| LeqaError::new(ErrorKind::Io, format!("writing frame: {e}")))
}

/// Incremental `frame1` decoder: feed raw bytes with [`push`], pop
/// complete frames with [`next`], and call [`finish`] at EOF to turn a
/// partial trailing frame into a typed error.
///
/// [`push`]: FrameDecoder::push
/// [`next`]: FrameDecoder::next
/// [`finish`]: FrameDecoder::finish
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Byte offset of the next undecoded frame in `buf` (consumed bytes
    /// are compacted away once they outgrow the unread remainder).
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with empty buffer state.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw transport bytes to the decode buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: drop consumed bytes when they dominate
        // the buffer so a long-lived connection doesn't accrete memory.
        if self.pos > 0 && self.pos >= self.buf.len() - self.pos {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame as `(tag, payload)`, or `None` when
    /// more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError`] (kind `json`) when the header announces a payload
    /// over [`MAX_FRAME_PAYLOAD`]; the error carries the frame's tag so
    /// the reply can be routed, and the decoder is poisoned for further
    /// use (the stream position is no longer trustworthy).
    // Not `Iterator`: the fallible `Result<Option<_>>` shape can't be.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(u32, Vec<u8>)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        let tag = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::new(
                Some(tag),
                format!("frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"),
            ));
        }
        let total = FRAME_HEADER + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER..total].to_vec();
        self.pos += total;
        Ok(Some((tag, payload)))
    }

    /// Call at EOF: a cleanly closed stream ends exactly on a frame
    /// boundary, so leftover bytes are a truncated frame.
    ///
    /// # Errors
    ///
    /// [`FrameError`] (kind `json`) when bytes remain; carries the
    /// partial frame's tag when at least the header arrived.
    pub fn finish(&self) -> Result<(), FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return Ok(());
        }
        let tag = (avail.len() >= FRAME_HEADER)
            .then(|| u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes")));
        Err(FrameError::new(
            tag,
            format!(
                "connection closed mid-frame with {} undecoded bytes",
                avail.len()
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn decode_all(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
        let mut dec = FrameDecoder::new();
        dec.push(bytes);
        let mut out = Vec::new();
        while let Some(frame) = dec.next().expect("well-formed stream") {
            out.push(frame);
        }
        dec.finish().expect("no trailing bytes");
        out
    }

    #[test]
    fn empty_payload_and_extreme_tags_round_trip() {
        for tag in [0u32, 1, u32::MAX, u32::MAX - 1] {
            let mut wire = Vec::new();
            write_frame(&mut wire, tag, b"").unwrap();
            assert_eq!(wire.len(), FRAME_HEADER);
            assert_eq!(decode_all(&wire), vec![(tag, Vec::new())]);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_with_its_tag() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        wire.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let err = dec.next().unwrap_err();
        assert_eq!(err.tag, Some(0xdead_beef));
        assert_eq!(err.error.kind(), ErrorKind::Json);
        assert!(err.error.message().contains("exceeds"), "{}", err.error);
    }

    #[test]
    fn writer_refuses_oversized_payloads() {
        let payload = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        let err = write_frame(&mut Vec::new(), 1, &payload).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Internal);
    }

    #[test]
    fn truncated_header_reports_without_tag() {
        let mut dec = FrameDecoder::new();
        dec.push(&[1, 2, 3]);
        assert!(dec.next().unwrap().is_none());
        let err = dec.finish().unwrap_err();
        assert_eq!(err.tag, None);
        assert_eq!(err.error.kind(), ErrorKind::Json);
    }

    #[test]
    fn truncated_payload_reports_the_tag() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 42, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(dec.next().unwrap().is_none());
        let err = dec.finish().unwrap_err();
        assert_eq!(err.tag, Some(42));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn frames_round_trip_through_arbitrary_chunking(
            seed in 0u64..u64::MAX,
            frames in 1usize..8,
            chunk in 1usize..64,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut wire = Vec::new();
            let mut expect = Vec::new();
            for _ in 0..frames {
                let tag: u32 = rng.gen();
                let len = rng.gen_range(0usize..2048);
                let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                write_frame(&mut wire, tag, &payload).unwrap();
                expect.push((tag, payload));
            }
            // One-shot decode and chunked decode must agree.
            prop_assert_eq!(&decode_all(&wire), &expect);
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.push(piece);
                while let Some(frame) = dec.next().expect("well-formed") {
                    got.push(frame);
                }
            }
            dec.finish().expect("stream ends on a boundary");
            prop_assert_eq!(&got, &expect);
        }

        #[test]
        fn truncation_at_any_byte_is_a_typed_error(
            seed in 0u64..u64::MAX,
            len in 0usize..256,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tag: u32 = rng.gen();
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let mut wire = Vec::new();
            write_frame(&mut wire, tag, &payload).unwrap();
            let cut = rng.gen_range(0..wire.len());
            if cut == 0 {
                return; // zero bytes at EOF is a clean close
            }
            let mut dec = FrameDecoder::new();
            dec.push(&wire[..cut]);
            prop_assert!(dec.next().expect("no complete frame yet").is_none());
            let err = dec.finish().expect_err("truncated");
            prop_assert_eq!(err.error.kind(), ErrorKind::Json);
            if cut >= FRAME_HEADER {
                prop_assert_eq!(err.tag, Some(tag));
            }
        }
    }
}
