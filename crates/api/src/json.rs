//! Dependency-free JSON encoding and decoding for the API DTOs.
//!
//! The build environment has no registry access, so instead of serde the
//! DTOs hand-roll their wire format over this small document model. Two
//! properties matter for the service framing:
//!
//! * **Byte-stable encoding** — objects preserve insertion order and
//!   numbers use Rust's shortest-round-trip float formatting, so the same
//!   response always encodes to the same bytes (the golden CLI tests
//!   assert this).
//! * **Total decoding** — [`parse`] never panics; malformed input yields a
//!   [`JsonError`] with byte-offset context that the error taxonomy maps
//!   to [`ErrorKind::Json`](crate::ErrorKind::Json).

use std::fmt;

/// A JSON document.
///
/// Objects are ordered `(key, value)` pairs: insertion order is encoding
/// order, which keeps encodings deterministic without a sort pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values encode as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from ordered pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to `f64`.
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks a key up in an object. `None` for missing keys *and* for
    /// non-objects — decoders follow up with typed accessors that attach
    /// context.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number that fits losslessly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Encodes the document compactly (no whitespace), deterministically.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Whole numbers in the ±2⁵³ lossless band print without a fraction so
/// counters look like integers on the wire; everything else uses float
/// `Display` (Ryū shortest-round-trip, deterministic across platforms).
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decoding failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`JsonError`] for syntax errors, nesting beyond 128 levels,
/// or trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain UTF-8 bytes (fast path, validated by slicing).
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) && self.bytes[self.pos] >= 0x20
            {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode `\uD8xx\uDCxx` as one char.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.encode(), text, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::num(1), Json::Null, Json::Bool(true)]),
            ),
            ("b", Json::obj(vec![("c", Json::str("x\"\\\n"))])),
        ]);
        let text = doc.encode();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(doc.encode(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn whole_floats_encode_as_integers() {
        assert_eq!(Json::num(3.0).encode(), "3");
        assert_eq!(Json::num(3.25).encode(), "3.25");
        assert_eq!(Json::num(f64::NAN).encode(), "null");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::str("é"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err()); // lone high surrogate
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1e", "\"x", "[]]", "nul", "{1:2}", "--1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n":4,"s":"x","a":[1],"b":true,"z":null}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert!(doc.get("z").unwrap().is_null());
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::num(-1).as_u64(), None);
        assert_eq!(Json::num(1.5).as_u64(), None);
    }
}
