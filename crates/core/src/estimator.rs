//! Algorithm 1: the end-to-end LEQA estimator.

use leqa_circuit::FtOp;
use leqa_circuit::{CriticalPath, Iig, Qodg, QodgNode};
use leqa_fabric::{FabricDims, Micros, OneQubitKind, PhysicalParams};

pub use crate::coverage::ZoneRounding;
use crate::coverage::{CoverageTable, DEFAULT_MAX_TERMS};
use crate::{presence, queue, tsp, EstimateError};

/// Tunables of the estimation procedure.
///
/// The defaults follow the paper: 20 `E[S_q]` terms, the routing-latency-
/// aware critical path of Algorithm 1 line 19, and ceiling rounding for the
/// zone side (where the paper's typography is ambiguous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorOptions {
    /// Number of `E[S_q]` terms to evaluate (the paper uses 20; §3.1).
    pub max_esq_terms: usize,
    /// Integer rounding of the zone side `√B` in Eq. 5.
    pub zone_rounding: ZoneRounding,
    /// Whether to add the routing latencies to the node delays before the
    /// critical-path pass (Algorithm 1 line 19). Disabling this reproduces
    /// the naive estimate the paper argues against; it exists for the
    /// `ablation_critpath` bench.
    pub update_critical_path: bool,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        EstimatorOptions {
            max_esq_terms: DEFAULT_MAX_TERMS,
            zone_rounding: ZoneRounding::default(),
            update_critical_path: true,
        }
    }
}

/// The LEQA estimator for one fabric and parameter set.
///
/// See the [crate docs](crate) for a full example.
#[derive(Debug, Clone)]
pub struct Estimator {
    dims: FabricDims,
    params: PhysicalParams,
    options: EstimatorOptions,
}

impl Estimator {
    /// Creates an estimator with the paper's default options.
    pub fn new(dims: FabricDims, params: PhysicalParams) -> Self {
        Estimator {
            dims,
            params,
            options: EstimatorOptions::default(),
        }
    }

    /// Creates an estimator with explicit options.
    pub fn with_options(
        dims: FabricDims,
        params: PhysicalParams,
        options: EstimatorOptions,
    ) -> Self {
        Estimator {
            dims,
            params,
            options,
        }
    }

    /// The fabric dimensions in use.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// The physical parameters in use.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The options in use.
    pub fn options(&self) -> &EstimatorOptions {
        &self.options
    }

    /// Runs Algorithm 1 on a QODG and returns the latency estimate with all
    /// intermediate quantities (C-INTERMEDIATE).
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::FabricTooSmall`] if the program uses more
    /// logical qubits than the fabric has ULBs, and
    /// [`EstimateError::InvalidOption`] if `max_esq_terms` is zero.
    pub fn estimate(&self, qodg: &Qodg) -> Result<Estimate, EstimateError> {
        if self.options.max_esq_terms == 0 {
            return Err(EstimateError::InvalidOption {
                name: "max_esq_terms",
            });
        }
        let qubit_count = qodg.num_qubits() as u64;
        if qubit_count > self.dims.area() {
            return Err(EstimateError::FabricTooSmall {
                qubits: qubit_count,
                area: self.dims.area(),
            });
        }

        // Line 1: the IIG.
        let iig = Iig::from_qodg(qodg);
        // Lines 2–3: presence zones.
        let avg_zone_area = presence::average_zone_area(&iig);

        let (l_cnot_avg, d_uncong, esq, zone_side) = match avg_zone_area {
            // No two-qubit ops at all: no CNOT routing exists.
            None => (Micros::ZERO, Micros::ZERO, Vec::new(), 0),
            Some(b) => {
                // Lines 4–8: d_uncong.
                let d_uncong = tsp::uncongested_delay(&iig, self.params.qubit_speed())
                    .expect("interactions exist, so the average is defined");
                // Lines 9–13: the P_{x,y} table.
                let table = CoverageTable::new(self.dims, b, self.options.zone_rounding);
                // Lines 14–17: E[S_q] and d_q.
                let esq = table.expected_surfaces(qubit_count, self.options.max_esq_terms);
                // Line 18: L_CNOT^avg (Eq. 2).
                let mut num = 0.0;
                let mut den = 0.0;
                for (k, &e) in esq.iter().enumerate() {
                    let q = (k + 1) as u64;
                    let d_q = queue::routing_delay(q, self.params.channel_capacity(), d_uncong);
                    num += e * d_q.as_f64();
                    den += e;
                }
                let l = if den > 0.0 {
                    Micros::new(num / den)
                } else {
                    Micros::ZERO
                };
                (l, d_uncong, esq, table.zone_side())
            }
        };

        let l_one_qubit_avg = self.params.one_qubit_routing_latency();
        let delays = *self.params.gate_delays();

        // Line 19: critical path, with or without the routing update.
        let include_routing = self.options.update_critical_path;
        let critical = qodg.critical_path(|node| match node {
            QodgNode::Op(FtOp::Cnot { .. }) => {
                delays.cnot()
                    + if include_routing {
                        l_cnot_avg
                    } else {
                        Micros::ZERO
                    }
            }
            QodgNode::Op(FtOp::OneQubit { kind, .. }) => {
                delays.one_qubit(*kind)
                    + if include_routing {
                        l_one_qubit_avg
                    } else {
                        Micros::ZERO
                    }
            }
            _ => Micros::ZERO,
        });

        // Line 20: Eq. 1 from the critical-path census. When the critical
        // path already includes the routing latencies this equals its
        // length; the explicit form also covers the ablation variant.
        let mut latency = (delays.cnot() + l_cnot_avg) * critical.cnot_count as f64;
        for kind in OneQubitKind::ALL {
            let n = critical.one_qubit_counts[kind.index()] as f64;
            latency += (delays.one_qubit(kind) + l_one_qubit_avg) * n;
        }

        Ok(Estimate {
            latency,
            l_cnot_avg,
            l_one_qubit_avg,
            d_uncong,
            avg_zone_area: avg_zone_area.unwrap_or(0.0),
            zone_side,
            esq,
            critical,
            qubit_count,
        })
    }
}

/// The output of Algorithm 1, with every intermediate the paper names.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// `D` (Eq. 1): the estimated program latency.
    pub latency: Micros,
    /// `L_CNOT^avg` (Eq. 2): average CNOT routing latency.
    pub l_cnot_avg: Micros,
    /// `L_g^avg = 2·T_move`: average one-qubit-op routing latency.
    pub l_one_qubit_avg: Micros,
    /// `d_uncong` (Eq. 12): average uncongested routing latency.
    pub d_uncong: Micros,
    /// `B` (Eq. 7): average presence-zone area (0 when no CNOTs exist).
    pub avg_zone_area: f64,
    /// The integer zone side used in Eq. 5 (0 when no CNOTs exist).
    pub zone_side: u32,
    /// `E[S_q]` for `q = 1..` (Eq. 4), truncated per the options.
    pub esq: Vec<f64>,
    /// The routing-aware critical path (Algorithm 1 line 19) and its
    /// op-type census (`N^critical` of Eq. 1).
    pub critical: CriticalPath,
    /// `Q`: logical qubits in the program.
    pub qubit_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{decompose::lower_to_ft, Circuit, FtCircuit, Gate, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn small_qodg() -> Qodg {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        c.push(Gate::cnot(q(0), q(2)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        Qodg::from_ft_circuit(&ft)
    }

    fn dac13_estimator() -> Estimator {
        Estimator::new(FabricDims::dac13(), PhysicalParams::dac13())
    }

    #[test]
    fn estimate_is_positive_and_consistent() {
        let est = dac13_estimator().estimate(&small_qodg()).unwrap();
        assert!(est.latency.as_f64() > 0.0);
        // With the routing update on, Eq. 1 equals the critical-path length.
        assert!(
            (est.latency.as_f64() - est.critical.length.as_f64()).abs() < 1e-6,
            "Eq. 1 must equal the routing-aware critical path"
        );
    }

    #[test]
    fn one_qubit_only_circuit_has_no_cnot_latency() {
        let mut ft = FtCircuit::new(2);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.l_cnot_avg, Micros::ZERO);
        assert_eq!(est.avg_zone_area, 0.0);
        assert!(est.esq.is_empty());
        // Critical path = the slower single op + its routing.
        assert_eq!(est.latency.as_f64(), 10940.0 + 200.0);
    }

    #[test]
    fn empty_program_estimates_zero() {
        let ft = FtCircuit::new(1);
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.latency, Micros::ZERO);
    }

    #[test]
    fn fabric_too_small_is_an_error() {
        let dims = FabricDims::new(2, 2).unwrap();
        let estimator = Estimator::new(dims, PhysicalParams::dac13());
        let mut ft = FtCircuit::new(5);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        assert!(matches!(
            estimator.estimate(&qodg),
            Err(EstimateError::FabricTooSmall { qubits: 5, area: 4 })
        ));
    }

    #[test]
    fn zero_terms_is_an_error() {
        let options = EstimatorOptions {
            max_esq_terms: 0,
            ..Default::default()
        };
        let estimator =
            Estimator::with_options(FabricDims::dac13(), PhysicalParams::dac13(), options);
        assert!(matches!(
            estimator.estimate(&small_qodg()),
            Err(EstimateError::InvalidOption {
                name: "max_esq_terms"
            })
        ));
    }

    #[test]
    fn routing_update_never_shortens_the_estimate() {
        let qodg = small_qodg();
        let with = dac13_estimator().estimate(&qodg).unwrap();
        let without = Estimator::with_options(
            FabricDims::dac13(),
            PhysicalParams::dac13(),
            EstimatorOptions {
                update_critical_path: false,
                ..Default::default()
            },
        )
        .estimate(&qodg)
        .unwrap();
        assert!(with.latency.as_f64() >= without.latency.as_f64() - 1e-9);
    }

    #[test]
    fn smaller_fabric_means_more_congestion() {
        // Build a circuit with heavy interaction so zones overlap more on a
        // smaller fabric, raising L_CNOT^avg.
        let mut ft = FtCircuit::new(24);
        for i in 0..24u32 {
            for j in (i + 1)..24 {
                ft.push_cnot(q(i), q(j)).unwrap();
            }
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let small = Estimator::new(FabricDims::new(6, 6).unwrap(), PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        let large = Estimator::new(FabricDims::new(60, 60).unwrap(), PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        assert!(
            small.l_cnot_avg.as_f64() > large.l_cnot_avg.as_f64(),
            "small fabric {} vs large {}",
            small.l_cnot_avg,
            large.l_cnot_avg
        );
    }

    #[test]
    fn esq_terms_truncate() {
        let mut ft = FtCircuit::new(40);
        for i in 0..39u32 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.esq.len(), 20);
    }

    #[test]
    fn accessors() {
        let e = dac13_estimator();
        assert_eq!(e.dims().area(), 3600);
        assert_eq!(e.params().channel_capacity(), 5);
        assert_eq!(e.options().max_esq_terms, 20);
    }
}
