//! Algorithm 1: the end-to-end LEQA estimator.
//!
//! The implementation is split along the paper's own structure: the
//! program-dependent passes live in [`ProgramProfile`], the
//! fabric-dependent quantities in [`Estimator::estimate_with_profile`] —
//! [`Estimator::estimate`] simply builds a throwaway profile first, so both
//! entry points produce bit-identical results (the sweep engine in
//! [`crate::sweep`] relies on this).

use std::sync::Arc;

use leqa_circuit::FtOp;
use leqa_circuit::{CriticalPath, CriticalPathScratch, Qodg, QodgNode};
use leqa_fabric::{FabricDims, FabricMap, GateDelays, Micros, OneQubitKind, PhysicalParams};

pub use crate::coverage::ZoneRounding;
use crate::coverage::{CoverageHistogram, DEFAULT_MAX_TERMS};
use crate::{queue, EstimateError, ProgramProfile};

/// Tunables of the estimation procedure.
///
/// The defaults follow the paper: 20 `E[S_q]` terms, the routing-latency-
/// aware critical path of Algorithm 1 line 19, and ceiling rounding for the
/// zone side (where the paper's typography is ambiguous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorOptions {
    /// Number of `E[S_q]` terms to evaluate (the paper uses 20; §3.1).
    pub max_esq_terms: usize,
    /// Integer rounding of the zone side `√B` in Eq. 5.
    pub zone_rounding: ZoneRounding,
    /// Whether to add the routing latencies to the node delays before the
    /// critical-path pass (Algorithm 1 line 19). Disabling this reproduces
    /// the naive estimate the paper argues against; it exists for the
    /// `ablation_critpath` bench.
    pub update_critical_path: bool,
}

impl Default for EstimatorOptions {
    fn default() -> Self {
        EstimatorOptions {
            max_esq_terms: DEFAULT_MAX_TERMS,
            zone_rounding: ZoneRounding::default(),
            update_critical_path: true,
        }
    }
}

/// The LEQA estimator for one fabric and parameter set.
///
/// See the [crate docs](crate) for a full example.
#[derive(Debug, Clone)]
pub struct Estimator {
    dims: FabricDims,
    params: PhysicalParams,
    options: EstimatorOptions,
    /// Defect/heterogeneity overlay; `None` (or a pristine map) keeps the
    /// legacy uniform-fabric arithmetic bit-identical.
    fabric_map: Option<Arc<FabricMap>>,
}

impl Estimator {
    /// Creates an estimator with the paper's default options.
    pub fn new(dims: FabricDims, params: PhysicalParams) -> Self {
        Estimator {
            dims,
            params,
            options: EstimatorOptions::default(),
            fabric_map: None,
        }
    }

    /// Creates an estimator with explicit options.
    pub fn with_options(
        dims: FabricDims,
        params: PhysicalParams,
        options: EstimatorOptions,
    ) -> Self {
        Estimator {
            dims,
            params,
            options,
            fabric_map: None,
        }
    }

    /// Attaches a fabric map: the Eq. 7 zone average is rescaled for the
    /// lost cells (`B · A / A_live` — the survivors crowd onto less
    /// fabric), Eq. 12 uses the live-cell mean qubit speed, the Eq. 8
    /// congestion law uses the *mean* usable channel capacity (dead
    /// channels count as zero), and `L_g^avg` uses the live-cell mean
    /// `T_move`. A pristine map is equivalent to none.
    #[must_use]
    pub fn with_fabric_map(mut self, map: Arc<FabricMap>) -> Self {
        self.fabric_map = Some(map);
        self
    }

    /// The attached fabric map, if any.
    pub fn fabric_map(&self) -> Option<&FabricMap> {
        self.fabric_map.as_deref()
    }

    /// The fabric dimensions in use.
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// The physical parameters in use.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The options in use.
    pub fn options(&self) -> &EstimatorOptions {
        &self.options
    }

    /// Runs Algorithm 1 on a QODG and returns the latency estimate with all
    /// intermediate quantities (C-INTERMEDIATE).
    ///
    /// Builds a throwaway [`ProgramProfile`]; callers estimating the same
    /// program on several fabrics should build the profile once and use
    /// [`estimate_with_profile`](Self::estimate_with_profile) (or the sweep
    /// helpers in [`crate::sweep`]) instead.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::FabricTooSmall`] if the program uses more
    /// logical qubits than the fabric has ULBs, and
    /// [`EstimateError::InvalidOption`] if `max_esq_terms` is zero.
    #[must_use = "the estimate (or its error) is the entire point of the call"]
    pub fn estimate(&self, qodg: &Qodg) -> Result<Estimate, EstimateError> {
        self.estimate_with_profile(&ProgramProfile::new(qodg))
    }

    /// Runs the fabric-dependent part of Algorithm 1 against a prebuilt
    /// [`ProgramProfile`]. Bit-identical to [`estimate`](Self::estimate) on
    /// the profile's QODG; the `O(ops)` program traversals are skipped.
    ///
    /// # Errors
    ///
    /// Same as [`estimate`](Self::estimate).
    #[must_use = "the estimate (or its error) is the entire point of the call"]
    pub fn estimate_with_profile(
        &self,
        profile: &ProgramProfile<'_>,
    ) -> Result<Estimate, EstimateError> {
        let correction = self.map_correction()?;
        let quantities = self.routing_quantities_corrected(
            profile.qubit_count(),
            profile.data(),
            correction.as_ref(),
        )?;
        let params = correction.as_ref().map_or(&self.params, |c| &c.params);
        let mut scratch = CriticalPathScratch::new();
        let critical = routing_aware_critical_path(
            params,
            &self.options,
            profile.qodg(),
            quantities.l_cnot_avg,
            &mut scratch,
        );
        Ok(assemble_estimate(params, quantities, critical))
    }

    /// Runs Algorithm 1 directly from a gate stream, never materializing
    /// the circuit, the QODG or the op list: the profile pass accumulates
    /// the CSR IIG and the Eq. 7 / Eq. 12 aggregates in bounded memory
    /// ([`crate::stream`]), then a second pass over a fresh iterator runs
    /// the routing-aware critical path with per-wire state only.
    ///
    /// Bit-identical to [`estimate`](Self::estimate) on the materialized
    /// equivalent of the same stream, except that the returned
    /// [`CriticalPath::path`] is empty (per-wire state cannot name QODG
    /// nodes); every census field and every latency quantity matches.
    ///
    /// # Errors
    ///
    /// Everything [`estimate`](Self::estimate) returns, plus
    /// [`EstimateError::InvalidStream`] if the source yields an op
    /// inconsistent with its declared qubit count.
    #[must_use = "the estimate (or its error) is the entire point of the call"]
    pub fn estimate_stream<S: crate::stream::GateSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<Estimate, EstimateError> {
        let num_qubits = source.num_qubits();
        let mut builder = crate::stream::StreamingProfileBuilder::new(num_qubits);
        for op in source.gates() {
            builder.push(op);
        }
        let data = builder.finish()?;
        let correction = self.map_correction()?;
        let quantities =
            self.routing_quantities_corrected(num_qubits as u64, &data, correction.as_ref())?;
        // The IIG (the largest live structure at scale) is no longer
        // needed; free it before the critical-path pass allocates its
        // per-wire frontier, so their peaks don't stack.
        drop(data);
        let params = correction.as_ref().map_or(&self.params, |c| &c.params);
        let delays = OpDelays::new(params, &self.options, quantities.l_cnot_avg);
        let critical = crate::stream::streaming_critical_path(num_qubits, source.gates(), &delays)?;
        Ok(assemble_estimate(params, quantities, critical))
    }

    /// The second half of [`estimate_stream`](Self::estimate_stream) for
    /// callers that already hold the stream's [`ProfileData`](crate::ProfileData) (e.g. a
    /// session cache): only the critical-path pass consumes `ops`.
    ///
    /// # Errors
    ///
    /// Same as [`estimate_stream`](Self::estimate_stream).
    #[must_use = "the estimate (or its error) is the entire point of the call"]
    pub fn estimate_stream_with_data(
        &self,
        num_qubits: u32,
        data: &crate::ProfileData,
        ops: impl Iterator<Item = FtOp>,
    ) -> Result<Estimate, EstimateError> {
        let correction = self.map_correction()?;
        let quantities =
            self.routing_quantities_corrected(num_qubits as u64, data, correction.as_ref())?;
        let params = correction.as_ref().map_or(&self.params, |c| &c.params);
        let delays = OpDelays::new(params, &self.options, quantities.l_cnot_avg);
        let critical = crate::stream::streaming_critical_path(num_qubits, ops, &delays)?;
        Ok(assemble_estimate(params, quantities, critical))
    }

    /// Folds the attached fabric map (if any, and not pristine) into the
    /// derived quantities the corrected estimate needs. `Ok(None)` means
    /// the legacy uniform arithmetic applies unchanged.
    fn map_correction(&self) -> Result<Option<MapCorrection>, EstimateError> {
        let Some(map) = self.fabric_map.as_deref() else {
            return Ok(None);
        };
        let md = map.dims();
        if md != self.dims {
            return Err(EstimateError::FabricMapMismatch {
                dims: (self.dims.width(), self.dims.height()),
                map_dims: (md.width(), md.height()),
            });
        }
        if map.is_pristine() {
            return Ok(None);
        }
        let usable = map.live_cells();
        let params = self
            .params
            .to_builder()
            .t_move(Micros::new(
                map.mean_t_move_us(self.params.t_move().as_f64()),
            ))
            .qubit_speed(map.mean_qubit_speed(self.params.qubit_speed()))
            .build()
            .expect("live-cell means of valid parameters are valid");
        Ok(Some(MapCorrection {
            usable,
            area_scale: self.dims.area() as f64 / usable.max(1) as f64,
            capacity: map.mean_channel_capacity(self.params.channel_capacity()),
            params,
        }))
    }

    /// Lines 1–18 of Algorithm 1 for one fabric candidate: the congestion
    /// pricing quantities. Program-dependent inputs come from the profile;
    /// only the coverage statistics and the Eq. 2 average are computed here
    /// (`O(terms · s²)` via [`CoverageHistogram`]).
    pub(crate) fn routing_quantities(
        &self,
        profile: &ProgramProfile<'_>,
    ) -> Result<RoutingQuantities, EstimateError> {
        let correction = self.map_correction()?;
        self.routing_quantities_corrected(
            profile.qubit_count(),
            profile.data(),
            correction.as_ref(),
        )
    }

    /// Lines 1–18 from the owned [`ProfileData`] plus a qubit count — the
    /// shape both the materialized path ([`ProgramProfile`] wraps exactly
    /// these two things) and the streaming path (no QODG exists) share.
    fn routing_quantities_corrected(
        &self,
        qubit_count: u64,
        data: &crate::ProfileData,
        correction: Option<&MapCorrection>,
    ) -> Result<RoutingQuantities, EstimateError> {
        if self.options.max_esq_terms == 0 {
            return Err(EstimateError::InvalidOption {
                name: "max_esq_terms",
            });
        }
        let usable = correction.map_or(self.dims.area(), |c| c.usable);
        if qubit_count > usable {
            return Err(EstimateError::FabricTooSmall {
                qubits: qubit_count,
                area: usable,
            });
        }
        let params = correction.map_or(&self.params, |c| &c.params);

        let avg_zone_area = data.avg_zone_area();
        let (l_cnot_avg, d_uncong, esq, zone_side, b_eff) = match avg_zone_area {
            // No two-qubit ops at all: no CNOT routing exists.
            None => (Micros::ZERO, Micros::ZERO, Vec::new(), 0, 0.0),
            Some(b) => {
                // Eq. 7 on a defective fabric: the survivors crowd onto
                // `A_live` of the `A` cells, so zones dilate by `A/A_live`.
                let b = b * correction.map_or(1.0, |c| c.area_scale);
                // Lines 4–8: d_uncong (traversal prepaid by the profile).
                let d_uncong = data
                    .uncongested_delay(params.qubit_speed())
                    .expect("interactions exist, so the average is defined");
                // Lines 9–13: the P_{x,y} statistics, run-length compressed.
                let hist = CoverageHistogram::new(self.dims, b, self.options.zone_rounding);
                // Lines 14–17: E[S_q] and d_q.
                let esq = hist.expected_surfaces(qubit_count, self.options.max_esq_terms);
                // Line 18: L_CNOT^avg (Eq. 2). On a defective fabric the
                // Eq. 8 capacity is the mean usable capacity per channel
                // site (dead channels contribute zero), in general
                // fractional.
                let mut num = 0.0;
                let mut den = 0.0;
                for (k, &e) in esq.iter().enumerate() {
                    let q = (k + 1) as u64;
                    let d_q = match correction {
                        None => queue::routing_delay(q, self.params.channel_capacity(), d_uncong),
                        Some(c) => queue::routing_delay_frac(q, c.capacity, d_uncong),
                    };
                    num += e * d_q.as_f64();
                    den += e;
                }
                let l = if den > 0.0 {
                    Micros::new(num / den)
                } else {
                    Micros::ZERO
                };
                (l, d_uncong, esq, hist.zone_side(), b)
            }
        };

        Ok(RoutingQuantities {
            l_cnot_avg,
            d_uncong,
            esq,
            zone_side,
            avg_zone_area: b_eff,
            qubit_count,
        })
    }
}

/// The fabric-map-derived correction terms of the estimate (see
/// [`Estimator::with_fabric_map`]): computed once per estimate, absent on
/// uniform fabrics.
#[derive(Debug, Clone)]
struct MapCorrection {
    /// Live (usable) ULBs.
    usable: u64,
    /// `A / A_live ≥ 1`: the Eq. 7 zone dilation.
    area_scale: f64,
    /// Mean usable channel capacity (fractional; dead channels are zero).
    capacity: f64,
    /// Base parameters with `T_move` / qubit speed replaced by their
    /// live-cell means.
    params: PhysicalParams,
}

/// Line 19: the critical path with (or, per the options, without) the
/// routing latencies added to the node delays.
///
/// A free function over `(params, options)` rather than an [`Estimator`]
/// method: it is fabric-independent by construction, and the sweep engine
/// calls it once per path regime without inventing a placeholder fabric.
pub(crate) fn routing_aware_critical_path(
    params: &PhysicalParams,
    options: &EstimatorOptions,
    qodg: &Qodg,
    l_cnot_avg: Micros,
    scratch: &mut CriticalPathScratch,
) -> CriticalPath {
    let delays = OpDelays::new(params, options, l_cnot_avg);
    qodg.critical_path_reuse(
        |node| match node {
            QodgNode::Op(op) => delays.of(op),
            _ => Micros::ZERO,
        },
        scratch,
    )
}

/// The per-op delay model of Algorithm 1 line 19 — gate time plus (per the
/// options) the average routing latency — shared bit-for-bit by the QODG
/// walk ([`routing_aware_critical_path`]) and the streaming pass
/// ([`crate::stream::streaming_critical_path`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpDelays {
    delays: GateDelays,
    l_cnot: Micros,
    l_one: Micros,
    include_routing: bool,
}

impl OpDelays {
    pub(crate) fn new(
        params: &PhysicalParams,
        options: &EstimatorOptions,
        l_cnot_avg: Micros,
    ) -> Self {
        OpDelays {
            delays: *params.gate_delays(),
            l_cnot: l_cnot_avg,
            l_one: params.one_qubit_routing_latency(),
            include_routing: options.update_critical_path,
        }
    }

    /// The node delay for `op`.
    pub(crate) fn of(&self, op: &FtOp) -> Micros {
        let routing = match op {
            FtOp::Cnot { .. } => self.l_cnot,
            FtOp::OneQubit { .. } => self.l_one,
        };
        let gate = match op {
            FtOp::Cnot { .. } => self.delays.cnot(),
            FtOp::OneQubit { kind, .. } => self.delays.one_qubit(*kind),
        };
        gate + if self.include_routing {
            routing
        } else {
            Micros::ZERO
        }
    }
}

/// Line 20: Eq. 1 from the critical-path census. When the critical
/// path already includes the routing latencies this equals its
/// length; the explicit form also covers the ablation variant.
///
/// Fabric-independent (see [`routing_aware_critical_path`] on why it is a
/// free function).
pub(crate) fn assemble_estimate(
    params: &PhysicalParams,
    quantities: RoutingQuantities,
    critical: CriticalPath,
) -> Estimate {
    let RoutingQuantities {
        l_cnot_avg,
        d_uncong,
        esq,
        zone_side,
        avg_zone_area,
        qubit_count,
    } = quantities;
    let l_one_qubit_avg = params.one_qubit_routing_latency();
    let delays = *params.gate_delays();

    let mut latency = (delays.cnot() + l_cnot_avg) * critical.cnot_count as f64;
    for kind in OneQubitKind::ALL {
        let n = critical.one_qubit_counts[kind.index()] as f64;
        latency += (delays.one_qubit(kind) + l_one_qubit_avg) * n;
    }

    Estimate {
        latency,
        l_cnot_avg,
        l_one_qubit_avg,
        d_uncong,
        avg_zone_area,
        zone_side,
        esq,
        critical,
        qubit_count,
    }
}

/// Lines 1–18 of Algorithm 1 for one fabric candidate, bundled for the
/// sweep engine.
#[derive(Debug, Clone)]
pub(crate) struct RoutingQuantities {
    pub(crate) l_cnot_avg: Micros,
    pub(crate) d_uncong: Micros,
    pub(crate) esq: Vec<f64>,
    pub(crate) zone_side: u32,
    pub(crate) avg_zone_area: f64,
    pub(crate) qubit_count: u64,
}

/// The output of Algorithm 1, with every intermediate the paper names.
///
/// `#[non_exhaustive]`: response-shaped — new intermediates may be added
/// without a breaking release.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Estimate {
    /// `D` (Eq. 1): the estimated program latency.
    pub latency: Micros,
    /// `L_CNOT^avg` (Eq. 2): average CNOT routing latency.
    pub l_cnot_avg: Micros,
    /// `L_g^avg = 2·T_move`: average one-qubit-op routing latency.
    pub l_one_qubit_avg: Micros,
    /// `d_uncong` (Eq. 12): average uncongested routing latency.
    pub d_uncong: Micros,
    /// `B` (Eq. 7): average presence-zone area (0 when no CNOTs exist).
    pub avg_zone_area: f64,
    /// The integer zone side used in Eq. 5 (0 when no CNOTs exist).
    pub zone_side: u32,
    /// `E[S_q]` for `q = 1..` (Eq. 4), truncated per the options.
    pub esq: Vec<f64>,
    /// The routing-aware critical path (Algorithm 1 line 19) and its
    /// op-type census (`N^critical` of Eq. 1).
    pub critical: CriticalPath,
    /// `Q`: logical qubits in the program.
    pub qubit_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{decompose::lower_to_ft, Circuit, FtCircuit, Gate, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn small_qodg() -> Qodg {
        let mut c = Circuit::new(3);
        c.push(Gate::toffoli(q(0), q(1), q(2)).unwrap()).unwrap();
        c.push(Gate::cnot(q(0), q(2)).unwrap()).unwrap();
        let ft = lower_to_ft(&c).unwrap();
        Qodg::from_ft_circuit(&ft)
    }

    fn dac13_estimator() -> Estimator {
        Estimator::new(FabricDims::dac13(), PhysicalParams::dac13())
    }

    #[test]
    fn estimate_is_positive_and_consistent() {
        let est = dac13_estimator().estimate(&small_qodg()).unwrap();
        assert!(est.latency.as_f64() > 0.0);
        // With the routing update on, Eq. 1 equals the critical-path length.
        assert!(
            (est.latency.as_f64() - est.critical.length.as_f64()).abs() < 1e-6,
            "Eq. 1 must equal the routing-aware critical path"
        );
    }

    #[test]
    fn one_qubit_only_circuit_has_no_cnot_latency() {
        let mut ft = FtCircuit::new(2);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.l_cnot_avg, Micros::ZERO);
        assert_eq!(est.avg_zone_area, 0.0);
        assert!(est.esq.is_empty());
        // Critical path = the slower single op + its routing.
        assert_eq!(est.latency.as_f64(), 10940.0 + 200.0);
    }

    #[test]
    fn empty_program_estimates_zero() {
        let ft = FtCircuit::new(1);
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.latency, Micros::ZERO);
    }

    #[test]
    fn fabric_too_small_is_an_error() {
        let dims = FabricDims::new(2, 2).unwrap();
        let estimator = Estimator::new(dims, PhysicalParams::dac13());
        let mut ft = FtCircuit::new(5);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        assert!(matches!(
            estimator.estimate(&qodg),
            Err(EstimateError::FabricTooSmall { qubits: 5, area: 4 })
        ));
    }

    #[test]
    fn zero_terms_is_an_error() {
        let options = EstimatorOptions {
            max_esq_terms: 0,
            ..Default::default()
        };
        let estimator =
            Estimator::with_options(FabricDims::dac13(), PhysicalParams::dac13(), options);
        assert!(matches!(
            estimator.estimate(&small_qodg()),
            Err(EstimateError::InvalidOption {
                name: "max_esq_terms"
            })
        ));
    }

    #[test]
    fn routing_update_never_shortens_the_estimate() {
        let qodg = small_qodg();
        let with = dac13_estimator().estimate(&qodg).unwrap();
        let without = Estimator::with_options(
            FabricDims::dac13(),
            PhysicalParams::dac13(),
            EstimatorOptions {
                update_critical_path: false,
                ..Default::default()
            },
        )
        .estimate(&qodg)
        .unwrap();
        assert!(with.latency.as_f64() >= without.latency.as_f64() - 1e-9);
    }

    #[test]
    fn smaller_fabric_means_more_congestion() {
        // Build a circuit with heavy interaction so zones overlap more on a
        // smaller fabric, raising L_CNOT^avg.
        let mut ft = FtCircuit::new(24);
        for i in 0..24u32 {
            for j in (i + 1)..24 {
                ft.push_cnot(q(i), q(j)).unwrap();
            }
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let small = Estimator::new(FabricDims::new(6, 6).unwrap(), PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        let large = Estimator::new(FabricDims::new(60, 60).unwrap(), PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        assert!(
            small.l_cnot_avg.as_f64() > large.l_cnot_avg.as_f64(),
            "small fabric {} vs large {}",
            small.l_cnot_avg,
            large.l_cnot_avg
        );
    }

    #[test]
    fn esq_terms_truncate() {
        let mut ft = FtCircuit::new(40);
        for i in 0..39u32 {
            ft.push_cnot(q(i), q(i + 1)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let est = dac13_estimator().estimate(&qodg).unwrap();
        assert_eq!(est.esq.len(), 20);
    }

    #[test]
    fn accessors() {
        let e = dac13_estimator();
        assert_eq!(e.dims().area(), 3600);
        assert_eq!(e.params().channel_capacity(), 5);
        assert_eq!(e.options().max_esq_terms, 20);
    }

    fn dense_qodg(n: u32) -> Qodg {
        let mut ft = FtCircuit::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                ft.push_cnot(q(i), q(j)).unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn pristine_map_estimate_is_bit_identical() {
        let dims = FabricDims::new(12, 12).unwrap();
        let qodg = dense_qodg(16);
        let plain = Estimator::new(dims, PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        let mapped = Estimator::new(dims, PhysicalParams::dac13())
            .with_fabric_map(Arc::new(FabricMap::pristine(dims)))
            .estimate(&qodg)
            .unwrap();
        assert_eq!(plain.latency, mapped.latency);
        assert_eq!(plain.l_cnot_avg, mapped.l_cnot_avg);
        assert_eq!(plain.d_uncong, mapped.d_uncong);
        assert_eq!(plain.avg_zone_area, mapped.avg_zone_area);
        assert_eq!(plain.esq, mapped.esq);
    }

    #[test]
    fn dead_cells_dilate_zones_and_raise_the_estimate() {
        let dims = FabricDims::new(8, 8).unwrap();
        let qodg = dense_qodg(20);
        let plain = Estimator::new(dims, PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        let mut map = FabricMap::pristine(dims);
        // Kill a quarter of the fabric: zones dilate by 4/3.
        for y in 0..4 {
            for x in 0..4 {
                map.disable_cell(leqa_fabric::Ulb::new(x, y)).unwrap();
            }
        }
        let damaged = Estimator::new(dims, PhysicalParams::dac13())
            .with_fabric_map(Arc::new(map))
            .estimate(&qodg)
            .unwrap();
        assert!(
            damaged.avg_zone_area > plain.avg_zone_area,
            "dead cells must dilate B: {} vs {}",
            damaged.avg_zone_area,
            plain.avg_zone_area
        );
        assert!((damaged.avg_zone_area / plain.avg_zone_area - 64.0 / 48.0).abs() < 1e-9);
        assert!(damaged.latency >= plain.latency);
    }

    #[test]
    fn dead_channels_lower_effective_capacity() {
        let dims = FabricDims::new(8, 8).unwrap();
        let qodg = dense_qodg(24);
        let plain = Estimator::new(dims, PhysicalParams::dac13())
            .estimate(&qodg)
            .unwrap();
        // Dead channels only: B and d_uncong are untouched, but the mean
        // capacity (and so L_CNOT^avg) degrades.
        let map = FabricMap::with_random_defects(dims, 0.0, 0.4, 3).unwrap();
        assert!(map.dead_channels() > 0);
        let damaged = Estimator::new(dims, PhysicalParams::dac13())
            .with_fabric_map(Arc::new(map))
            .estimate(&qodg)
            .unwrap();
        assert_eq!(damaged.avg_zone_area, plain.avg_zone_area);
        assert_eq!(damaged.d_uncong, plain.d_uncong);
        assert!(
            damaged.l_cnot_avg >= plain.l_cnot_avg,
            "capacity loss cannot speed up routing: {} vs {}",
            damaged.l_cnot_avg,
            plain.l_cnot_avg
        );
    }

    #[test]
    fn overlay_t_move_raises_one_qubit_routing() {
        let dims = FabricDims::new(6, 6).unwrap();
        let mut map = FabricMap::pristine(dims);
        map.push_overlay(leqa_fabric::RegionOverlay {
            x0: 0,
            y0: 0,
            x1: 5,
            y1: 5,
            t_move_us: Some(400.0), // 4x the dac13 base
            qubit_speed: None,
            channel_capacity: None,
        })
        .unwrap();
        let est = Estimator::new(dims, PhysicalParams::dac13())
            .with_fabric_map(Arc::new(map))
            .estimate(&small_qodg())
            .unwrap();
        assert_eq!(est.l_one_qubit_avg, Micros::new(800.0));
    }

    #[test]
    fn map_fit_check_uses_live_cells() {
        let dims = FabricDims::new(3, 3).unwrap();
        let mut map = FabricMap::pristine(dims);
        map.disable_cell(leqa_fabric::Ulb::new(1, 1)).unwrap();
        let mut ft = FtCircuit::new(9);
        ft.push_cnot(q(0), q(1)).unwrap();
        let qodg = Qodg::from_ft_circuit(&ft);
        let err = Estimator::new(dims, PhysicalParams::dac13())
            .with_fabric_map(Arc::new(map))
            .estimate(&qodg)
            .unwrap_err();
        assert_eq!(err, EstimateError::FabricTooSmall { qubits: 9, area: 8 });
    }

    #[test]
    fn mismatched_map_dims_is_an_error() {
        let est = Estimator::new(FabricDims::new(5, 5).unwrap(), PhysicalParams::dac13())
            .with_fabric_map(Arc::new(FabricMap::pristine(
                FabricDims::new(4, 4).unwrap(),
            )));
        assert_eq!(
            est.estimate(&small_qodg()).unwrap_err(),
            EstimateError::FabricMapMismatch {
                dims: (5, 5),
                map_dims: (4, 4)
            }
        );
    }
}
