//! Coverage statistics of randomly placed presence zones (Eqs. 4–5,
//! Fig. 4).
//!
//! With the placement unknown a priori, zones are assumed placed uniformly
//! and independently on the fabric. [`CoverageTable`] holds `P_{x,y}` — the
//! probability that a zone of side `⌈√B⌉` covers the ULB at `(x, y)` — and
//! [`CoverageTable::expected_surfaces`] evaluates
//! `E[S_q] = C(Q,q) · Σ_{x,y} P_{x,y}^q (1 − P_{x,y})^{Q−q}` (Eq. 4),
//! truncated to the first [`DEFAULT_MAX_TERMS`] values of `q` as the paper
//! does for speed.
//!
//! Numerics: the binomial coefficient uses the paper's constant-time
//! recurrence (Eq. 18) carried in log space, and the powers are evaluated as
//! `exp(q·ln P + (Q−q)·ln(1−P))` so that large `Q` neither under- nor
//! overflows.

use leqa_fabric::FabricDims;

/// The paper evaluates only the first 20 terms of `E[S_q]` (§3.1).
pub const DEFAULT_MAX_TERMS: usize = 20;

/// How to turn the (generally irrational) zone side `√B` into the integer
/// side length used by Eq. 5. The paper's typography is ambiguous between
/// floor and ceiling; the estimator defaults to [`Ceil`](Self::Ceil) and the
/// `ablation_zone_side` bench quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZoneRounding {
    /// `⌈√B⌉` (default).
    #[default]
    Ceil,
    /// `⌊√B⌋`.
    Floor,
    /// Nearest integer.
    Round,
}

impl ZoneRounding {
    /// Applies the rounding to a zone area, clamping to at least 1.
    pub fn side_of(self, area: f64) -> u32 {
        let side = area.max(0.0).sqrt();
        let side = match self {
            ZoneRounding::Ceil => side.ceil(),
            ZoneRounding::Floor => side.floor(),
            ZoneRounding::Round => side.round(),
        };
        (side as u32).max(1)
    }
}

/// The `P_{x,y}` table for one fabric and zone size (Eq. 5).
#[derive(Debug, Clone)]
pub struct CoverageTable {
    dims: FabricDims,
    side: u32,
    p: Vec<f64>,
}

impl CoverageTable {
    /// Computes `P_{x,y}` for every ULB of `dims`, for zones of average area
    /// `avg_zone_area` rounded to an integer side by `rounding`.
    ///
    /// The zone side is clamped to the fabric's smaller dimension so the
    /// placement count in Eq. 5's denominator stays positive (a zone larger
    /// than the fabric covers everything).
    ///
    /// Runs in `O(A)` (Algorithm 1, lines 9–13).
    pub fn new(dims: FabricDims, avg_zone_area: f64, rounding: ZoneRounding) -> Self {
        let side = rounding
            .side_of(avg_zone_area)
            .min(dims.width())
            .min(dims.height());
        let a = dims.width() as u64;
        let b = dims.height() as u64;
        let s = side as u64;
        let placements = ((a - s + 1) * (b - s + 1)) as f64;

        let mut p = Vec::with_capacity(dims.area() as usize);
        // The paper's x, y are 1-based (Eq. 5); iterate that way.
        for y in 1..=b {
            for x in 1..=a {
                let covers_x = x.min(a - x + 1).min(s).min(a - s + 1) as f64;
                let covers_y = y.min(b - y + 1).min(s).min(b - s + 1) as f64;
                p.push(covers_x * covers_y / placements);
            }
        }
        CoverageTable { dims, side, p }
    }

    /// The integer zone side actually used.
    #[inline]
    pub fn zone_side(&self) -> u32 {
        self.side
    }

    /// The fabric this table was computed for.
    #[inline]
    pub fn dims(&self) -> FabricDims {
        self.dims
    }

    /// `P_{x,y}` with the paper's 1-based coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x`/`y` are 0 or exceed the fabric.
    pub fn p(&self, x: u32, y: u32) -> f64 {
        assert!(x >= 1 && x <= self.dims.width(), "x out of range");
        assert!(y >= 1 && y <= self.dims.height(), "y out of range");
        self.p[((y - 1) as usize) * self.dims.width() as usize + (x - 1) as usize]
    }

    /// All probabilities, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.p
    }

    /// `E[S_q]` for `q = 1 ..= min(max_terms, qubits)` (Eq. 4); entry `k`
    /// of the result is `E[S_{k+1}]`.
    ///
    /// `qubits` is the paper's `Q`, the number of presence zones dropped on
    /// the fabric. Runs in `O(terms · A)` plus `O(log Q)` per binomial
    /// update — the `O(Q·A·log Q)` of Eq. 17 when `max_terms = Q`.
    pub fn expected_surfaces(&self, qubits: u64, max_terms: usize) -> Vec<f64> {
        let terms = (max_terms as u64).min(qubits) as usize;
        let mut out = Vec::with_capacity(terms);
        let q_total = qubits as f64;
        // ln C(Q, q) by the recurrence ln C(Q,q) = ln C(Q,q-1) + ln((Q-q+1)/q).
        let mut ln_choose = 0.0f64;
        for q in 1..=terms as u64 {
            ln_choose += ((q_total - q as f64 + 1.0) / q as f64).ln();
            let qf = q as f64;
            let rest = q_total - qf;
            let mut sum = 0.0;
            for &p in &self.p {
                if p >= 1.0 {
                    // A zone as large as the fabric covers this ULB surely,
                    // so the ULB is covered by exactly Q zones: probability
                    // mass 1 at q == Q, zero elsewhere.
                    if q == qubits {
                        sum += 1.0;
                    }
                    continue;
                }
                let ln_term = qf * p.ln() + rest * (-p).ln_1p();
                sum += (ln_choose + ln_term).exp();
            }
            out.push(sum);
        }
        out
    }
}

/// A run-length-compressed view of the `P_{x,y}` table (Eq. 5), for fast
/// `E[S_q]` evaluation.
///
/// `P_{x,y} = covers(x)·covers(y) / placements` takes at most
/// `min(s, a−s+1) · min(s, b−s+1)` **distinct** values on an `a × b`
/// fabric (the coverage count per axis saturates after `s` steps), so the
/// Eq. 4 sum over all `A` ULBs collapses to a sum over distinct values with
/// integer multiplicities. [`expected_surfaces`](Self::expected_surfaces)
/// therefore costs `O(terms · s²)` instead of the table's
/// `O(terms · A)` — the dominant per-candidate cost in a fabric sweep —
/// while computing exactly the same quantity (summation order differs, so
/// results can differ from [`CoverageTable`] in the last few ULPs).
#[derive(Debug, Clone)]
pub struct CoverageHistogram {
    side: u32,
    /// `(multiplicity, P, ln P, ln(1 − P))` per distinct coverage value.
    /// Entries with `P ≥ 1` keep NaN logs and are handled separately, as in
    /// [`CoverageTable::expected_surfaces`].
    entries: Vec<(f64, f64, f64, f64)>,
}

impl CoverageHistogram {
    /// Builds the histogram for zones of average area `avg_zone_area`
    /// (rounded by `rounding`, clamped exactly like [`CoverageTable::new`])
    /// on `dims`. Runs in `O(s²)` — it never materialises the `A`-sized
    /// table.
    pub fn new(dims: FabricDims, avg_zone_area: f64, rounding: ZoneRounding) -> Self {
        let side = rounding
            .side_of(avg_zone_area)
            .min(dims.width())
            .min(dims.height());
        let a = dims.width() as u64;
        let b = dims.height() as u64;
        let s = side as u64;
        let placements = ((a - s + 1) * (b - s + 1)) as f64;

        // Per axis of length n, covers(x) = min(x, n−x+1, s, n−s+1) takes
        // value k with multiplicity 2 for k < m := min(s, n−s+1) (x = k and
        // x = n−k+1) and multiplicity n − 2(m−1) for k = m.
        let axis = |n: u64| -> Vec<(u64, u64)> {
            let m = s.min(n - s + 1);
            let mut out = Vec::with_capacity(m as usize);
            for k in 1..m {
                out.push((k, 2));
            }
            out.push((m, n - 2 * (m - 1)));
            out
        };

        let xs = axis(a);
        let ys = axis(b);
        let mut entries = Vec::with_capacity(xs.len() * ys.len());
        for &(cy, my) in &ys {
            for &(cx, mx) in &xs {
                let p = (cx * cy) as f64 / placements;
                entries.push(((mx * my) as f64, p, p.ln(), (-p).ln_1p()));
            }
        }
        CoverageHistogram { side, entries }
    }

    /// The integer zone side actually used.
    #[inline]
    pub fn zone_side(&self) -> u32 {
        self.side
    }

    /// `E[S_q]` for `q = 1 ..= min(max_terms, qubits)` (Eq. 4); entry `k`
    /// of the result is `E[S_{k+1}]`. Semantically identical to
    /// [`CoverageTable::expected_surfaces`], evaluated over the compressed
    /// histogram.
    pub fn expected_surfaces(&self, qubits: u64, max_terms: usize) -> Vec<f64> {
        let terms = (max_terms as u64).min(qubits) as usize;
        let mut out = Vec::with_capacity(terms);
        let q_total = qubits as f64;
        let mut ln_choose = 0.0f64;
        for q in 1..=terms as u64 {
            ln_choose += ((q_total - q as f64 + 1.0) / q as f64).ln();
            let qf = q as f64;
            let rest = q_total - qf;
            let mut sum = 0.0;
            for &(mult, p, ln_p, ln_1mp) in &self.entries {
                if p >= 1.0 {
                    // A zone as large as the fabric covers these ULBs
                    // surely: probability mass 1 at q == Q, zero elsewhere.
                    if q == qubits {
                        sum += mult;
                    }
                    continue;
                }
                sum += mult * (ln_choose + qf * ln_p + rest * ln_1mp).exp();
            }
            out.push(sum);
        }
        out
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use proptest::prelude::*;

    fn dims(a: u32, b: u32) -> FabricDims {
        FabricDims::new(a, b).unwrap()
    }

    #[test]
    fn histogram_matches_table_sides_and_esq() {
        for (a, b, area, qubits) in [
            (3u32, 3u32, 3.0f64, 3u64),
            (4, 5, 1.0, 6),
            (9, 9, 9.0, 12),
            (60, 60, 6.0, 768),
            (8, 6, 4.0, 10),
            (3, 3, 9.0, 4), // zone covers the whole fabric
        ] {
            let table = CoverageTable::new(dims(a, b), area, ZoneRounding::Ceil);
            let hist = CoverageHistogram::new(dims(a, b), area, ZoneRounding::Ceil);
            assert_eq!(table.zone_side(), hist.zone_side());
            let esq_t = table.expected_surfaces(qubits, 20);
            let esq_h = hist.expected_surfaces(qubits, 20);
            assert_eq!(esq_t.len(), esq_h.len());
            for (t, h) in esq_t.iter().zip(&esq_h) {
                assert!(
                    (t - h).abs() <= 1e-9 * t.abs().max(1.0),
                    "{a}x{b} area {area}: table {t} vs histogram {h}"
                );
            }
        }
    }

    #[test]
    fn histogram_multiplicities_cover_the_fabric() {
        // Multiplicities must sum to A for any geometry.
        for (a, b, area) in [(3u32, 7u32, 2.0), (16, 4, 5.5), (60, 60, 36.0)] {
            let hist = CoverageHistogram::new(dims(a, b), area, ZoneRounding::Ceil);
            let total: f64 = hist.entries.iter().map(|e| e.0).sum();
            assert_eq!(total as u64, (a * b) as u64);
        }
    }

    proptest! {
        #[test]
        fn histogram_agrees_with_table_on_random_geometry(
            a in 2u32..24, b in 2u32..24, area in 1.0f64..100.0, qubits in 1u64..40
        ) {
            let table = CoverageTable::new(dims(a, b), area, ZoneRounding::Ceil);
            let hist = CoverageHistogram::new(dims(a, b), area, ZoneRounding::Ceil);
            prop_assert_eq!(table.zone_side(), hist.zone_side());
            let esq_t = table.expected_surfaces(qubits, 20);
            let esq_h = hist.expected_surfaces(qubits, 20);
            for (t, h) in esq_t.iter().zip(&esq_h) {
                prop_assert!((t - h).abs() <= 1e-9 * t.abs().max(1.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dims(a: u32, b: u32) -> FabricDims {
        FabricDims::new(a, b).unwrap()
    }

    #[test]
    fn rounding_modes() {
        assert_eq!(ZoneRounding::Ceil.side_of(2.0), 2); // √2 ≈ 1.41 → 2
        assert_eq!(ZoneRounding::Floor.side_of(2.0), 1);
        assert_eq!(ZoneRounding::Round.side_of(2.0), 1);
        assert_eq!(ZoneRounding::Ceil.side_of(9.0), 3);
        assert_eq!(ZoneRounding::Floor.side_of(0.0), 1); // clamped
    }

    #[test]
    fn unit_zone_covers_each_ulb_uniformly() {
        // Side-1 zone: every ULB is covered iff the zone lands exactly on
        // it → P = 1/A everywhere.
        let d = dims(4, 5);
        let t = CoverageTable::new(d, 1.0, ZoneRounding::Ceil);
        assert_eq!(t.zone_side(), 1);
        for &p in t.as_slice() {
            assert!((p - 1.0 / 20.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fabric_sized_zone_covers_everything() {
        let d = dims(3, 3);
        let t = CoverageTable::new(d, 9.0, ZoneRounding::Ceil);
        assert_eq!(t.zone_side(), 3);
        for &p in t.as_slice() {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn center_more_covered_than_corner() {
        let d = dims(9, 9);
        let t = CoverageTable::new(d, 9.0, ZoneRounding::Ceil); // side 3
        assert!(t.p(5, 5) > t.p(1, 1));
        // Corner: only 1 of the 7×7 placements covers it.
        assert!((t.p(1, 1) - 1.0 / 49.0).abs() < 1e-12);
        // Center: 3×3 placements cover it.
        assert!((t.p(5, 5) - 9.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn table_is_symmetric() {
        let d = dims(8, 6);
        let t = CoverageTable::new(d, 4.0, ZoneRounding::Ceil);
        for y in 1..=6u32 {
            for x in 1..=8u32 {
                let mirror_x = 8 - x + 1;
                let mirror_y = 6 - y + 1;
                assert!((t.p(x, y) - t.p(mirror_x, y)).abs() < 1e-12);
                assert!((t.p(x, y) - t.p(x, mirror_y)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_coverage_equals_zone_area_over_placements() {
        // Σ_{x,y} P_{x,y} = s² (each placement covers s² ULBs, every
        // placement equally likely).
        let d = dims(10, 7);
        let t = CoverageTable::new(d, 9.0, ZoneRounding::Ceil);
        let total: f64 = t.as_slice().iter().sum();
        assert!((total - 9.0).abs() < 1e-9);
    }

    #[test]
    fn esq_sums_to_covered_area() {
        // Σ_{q=0}^{Q} E[S_q] = A (Eq. 3); the q ≥ 1 part is A − E[S_0].
        let d = dims(6, 6);
        let t = CoverageTable::new(d, 4.0, ZoneRounding::Ceil);
        let qubits = 8u64;
        let esq = t.expected_surfaces(qubits, qubits as usize);
        let e_s0: f64 = t
            .as_slice()
            .iter()
            .map(|&p| (1.0 - p).powi(qubits as i32))
            .sum();
        let total: f64 = esq.iter().sum();
        assert!(
            (total + e_s0 - d.area() as f64).abs() < 1e-6,
            "Σ E[S_q] = {total}, E[S_0] = {e_s0}, A = {}",
            d.area()
        );
    }

    #[test]
    fn truncation_keeps_prefix() {
        let d = dims(6, 6);
        let t = CoverageTable::new(d, 4.0, ZoneRounding::Ceil);
        let full = t.expected_surfaces(30, 30);
        let truncated = t.expected_surfaces(30, 5);
        assert_eq!(truncated.len(), 5);
        for (a, b) in truncated.iter().zip(full.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn terms_clamped_to_qubit_count() {
        let d = dims(4, 4);
        let t = CoverageTable::new(d, 2.0, ZoneRounding::Ceil);
        assert_eq!(t.expected_surfaces(3, 20).len(), 3);
    }

    proptest! {
        #[test]
        fn probabilities_are_valid(
            a in 2u32..24, b in 2u32..24, area in 1.0f64..100.0
        ) {
            let t = CoverageTable::new(dims(a, b), area, ZoneRounding::Ceil);
            for &p in t.as_slice() {
                prop_assert!(p > 0.0 && p <= 1.0 + 1e-12);
            }
        }

        #[test]
        fn esq_values_are_nonnegative_and_bounded_by_area(
            a in 2u32..16, b in 2u32..16, area in 1.0f64..36.0, qubits in 1u64..40
        ) {
            let d = dims(a, b);
            let t = CoverageTable::new(d, area, ZoneRounding::Ceil);
            let esq = t.expected_surfaces(qubits, 20);
            for &e in &esq {
                prop_assert!(e >= 0.0);
                prop_assert!(e <= d.area() as f64 + 1e-9);
            }
        }
    }
}
