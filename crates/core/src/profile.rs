//! Reusable per-program precomputation for the estimator.
//!
//! Algorithm 1 splits naturally into *program-dependent* work — the IIG
//! traversal, the presence-zone average `B` (Eq. 7) and the per-qubit
//! uncongested-delay terms (Eqs. 15–16) — and *fabric-dependent* work (the
//! coverage statistics, the M/M/1 pricing and the critical-path pass). A
//! [`ProgramProfile`] captures everything in the first group once per QODG,
//! so an `N`-candidate fabric sweep pays the `O(ops)` traversals once
//! instead of `N` times (see [`crate::sweep`] and PERF.md).
//!
//! The precomputation itself lives in the owned, borrow-free
//! [`ProfileData`], so long-lived callers (the `leqa-api` session cache)
//! can store it next to the program and re-attach it to the QODG with
//! [`ProgramProfile::from_data`] at zero cost per request.

use std::borrow::Cow;

use leqa_circuit::{Iig, Qodg, QubitId};
use leqa_fabric::Micros;

use crate::{presence, tsp};

/// The owned program-dependent precomputation of Algorithm 1 (lines 1–8):
/// the IIG, Eq. 7's zone average and Eq. 12's weighted uncongested-delay
/// terms with the qubit speed factored out.
///
/// Unlike [`ProgramProfile`] this holds no borrow of the QODG, so it can
/// be cached and moved freely; pair it back up with the program it was
/// computed from via [`ProgramProfile::from_data`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileData {
    iig: Iig,
    /// `B` (Eq. 7), `None` when the program has no two-qubit ops.
    avg_zone_area: Option<f64>,
    /// `Σ_i strength_i · (E[l_ham,i] / M_i)` — the speed-independent
    /// numerator of Eq. 12 (multiply by `1/v` to price it).
    uncong_numerator: f64,
    /// `Σ_i strength_i` over qubits with interactions (Eq. 12 denominator).
    strength_total: f64,
}

impl ProfileData {
    /// Runs the program-dependent passes once for `qodg`.
    #[must_use]
    pub fn new(qodg: &Qodg) -> Self {
        ProfileData::with_iig(Iig::from_qodg(qodg))
    }

    /// Like [`new`](Self::new) with a caller-built IIG.
    #[must_use]
    pub fn with_iig(iig: Iig) -> Self {
        let avg_zone_area = presence::average_zone_area(&iig);
        let mut uncong_numerator = 0.0;
        let mut strength_total = 0.0;
        for i in 0..iig.num_qubits() {
            let q = QubitId(i);
            let strength = iig.strength(q) as f64;
            if strength > 0.0 {
                let m = iig.degree(q);
                // Eq. 16 numerator: E[l_ham,i] / M_i, speed factored out.
                let per_op = if m == 0 {
                    0.0
                } else {
                    tsp::expected_hamiltonian_path(m) / m as f64
                };
                uncong_numerator += strength * per_op;
                strength_total += strength;
            }
        }
        ProfileData {
            iig,
            avg_zone_area,
            uncong_numerator,
            strength_total,
        }
    }

    /// The interaction intensity graph.
    #[inline]
    pub fn iig(&self) -> &Iig {
        &self.iig
    }

    /// `B` (Eq. 7): the strength-weighted average presence-zone area, or
    /// `None` when the program has no two-qubit operations.
    #[inline]
    pub fn avg_zone_area(&self) -> Option<f64> {
        self.avg_zone_area
    }

    /// `d_uncong` (Eq. 12) for a fabric with the given qubit speed `v`,
    /// or `None` when no two-qubit operations exist.
    pub fn uncongested_delay(&self, qubit_speed: f64) -> Option<Micros> {
        (self.strength_total > 0.0)
            .then(|| Micros::new(self.uncong_numerator / self.strength_total / qubit_speed))
    }
}

/// Fabric-independent precomputation for one program (QODG).
///
/// # Examples
///
/// ```
/// use leqa::{Estimator, ProgramProfile};
/// use leqa_circuit::{FtCircuit, Qodg, QubitId};
/// use leqa_fabric::{FabricDims, PhysicalParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
/// let qodg = Qodg::from_ft_circuit(&ft);
///
/// let profile = ProgramProfile::new(&qodg);
/// let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
/// // Bit-identical to `estimator.estimate(&qodg)?`, minus the profile cost.
/// let estimate = estimator.estimate_with_profile(&profile)?;
/// assert!(estimate.latency.as_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProgramProfile<'a> {
    qodg: &'a Qodg,
    data: Cow<'a, ProfileData>,
}

impl<'a> ProgramProfile<'a> {
    /// Runs the program-dependent passes of Algorithm 1 (lines 1–8) once:
    /// IIG construction, Eq. 7's zone average, and Eq. 12's weighted
    /// uncongested-delay terms with the qubit speed factored out.
    #[must_use]
    pub fn new(qodg: &'a Qodg) -> Self {
        ProgramProfile {
            qodg,
            data: Cow::Owned(ProfileData::new(qodg)),
        }
    }

    /// Like [`new`](Self::new) with a caller-built IIG (for callers that
    /// already have one).
    #[must_use]
    pub fn with_iig(qodg: &'a Qodg, iig: Iig) -> Self {
        ProgramProfile {
            qodg,
            data: Cow::Owned(ProfileData::with_iig(iig)),
        }
    }

    /// Re-attaches cached [`ProfileData`] to the program it was computed
    /// from. O(1) — no traversal happens; this is how the `leqa-api`
    /// session serves repeat requests without rebuilding the profile.
    ///
    /// The caller must pair the data with *its own* QODG; attaching a
    /// different program's data silently yields that other program's
    /// congestion quantities.
    #[must_use]
    pub fn from_data(qodg: &'a Qodg, data: &'a ProfileData) -> Self {
        ProgramProfile {
            qodg,
            data: Cow::Borrowed(data),
        }
    }

    /// The program this profile was computed for.
    #[inline]
    pub fn qodg(&self) -> &'a Qodg {
        self.qodg
    }

    /// The owned program-dependent precomputation behind this profile.
    #[inline]
    pub fn data(&self) -> &ProfileData {
        &self.data
    }

    /// The interaction intensity graph.
    #[inline]
    pub fn iig(&self) -> &Iig {
        self.data.iig()
    }

    /// `Q`: logical qubits in the program.
    #[inline]
    pub fn qubit_count(&self) -> u64 {
        self.qodg.num_qubits() as u64
    }

    /// `B` (Eq. 7): the strength-weighted average presence-zone area, or
    /// `None` when the program has no two-qubit operations.
    #[inline]
    pub fn avg_zone_area(&self) -> Option<f64> {
        self.data.avg_zone_area()
    }

    /// Total interaction weight (two-qubit op count) of the program.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.data.iig.total_weight()
    }

    /// `d_uncong` (Eq. 12) for a fabric with the given qubit speed `v`, or
    /// `None` when no two-qubit operations exist. O(1): the traversal was
    /// paid at construction.
    pub fn uncongested_delay(&self, qubit_speed: f64) -> Option<Micros> {
        self.data.uncongested_delay(qubit_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn star_qodg() -> Qodg {
        let mut ft = FtCircuit::new(5);
        for i in 1..5 {
            ft.push_cnot(q(0), q(i)).unwrap();
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn profile_matches_direct_traversals() {
        let qodg = star_qodg();
        let profile = ProgramProfile::new(&qodg);
        let iig = Iig::from_qodg(&qodg);

        assert_eq!(
            profile.avg_zone_area(),
            presence::average_zone_area(&iig),
            "Eq. 7 must match the direct computation"
        );
        assert_eq!(profile.qubit_count(), 5);
        assert_eq!(profile.total_weight(), 4);

        // Eq. 12 agrees with the direct traversal to rounding.
        for v in [0.001, 0.01, 2.0] {
            let direct = tsp::uncongested_delay(&iig, v).unwrap().as_f64();
            let cached = profile.uncongested_delay(v).unwrap().as_f64();
            assert!(
                (direct - cached).abs() <= 1e-12 * direct.max(1.0),
                "v={v}: direct {direct} vs cached {cached}"
            );
        }
    }

    #[test]
    fn interaction_free_program_has_no_zone_quantities() {
        let ft = FtCircuit::new(4);
        let qodg = Qodg::from_ft_circuit(&ft);
        let profile = ProgramProfile::new(&qodg);
        assert_eq!(profile.avg_zone_area(), None);
        assert_eq!(profile.uncongested_delay(0.001), None);
        assert_eq!(profile.total_weight(), 0);
    }

    #[test]
    fn uncongested_delay_scales_inversely_with_speed() {
        let qodg = star_qodg();
        let profile = ProgramProfile::new(&qodg);
        let d1 = profile.uncongested_delay(0.001).unwrap().as_f64();
        let d2 = profile.uncongested_delay(0.002).unwrap().as_f64();
        assert!((d1 / d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detached_data_reattaches_bitwise_identically() {
        // The api session's caching pattern: compute once, detach, reuse.
        let qodg = star_qodg();
        let fresh = ProgramProfile::new(&qodg);
        let data = ProfileData::new(&qodg);
        let reattached = ProgramProfile::from_data(&qodg, &data);

        assert_eq!(fresh.avg_zone_area(), reattached.avg_zone_area());
        assert_eq!(fresh.total_weight(), reattached.total_weight());
        assert_eq!(
            fresh.uncongested_delay(0.001),
            reattached.uncongested_delay(0.001)
        );
    }
}
