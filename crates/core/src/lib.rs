//! LEQA — fast latency estimation for a quantum algorithm mapped to a
//! quantum circuit fabric (reproduction of Dousti & Pedram, DAC 2013).
//!
//! Computing the true latency of a quantum program requires detailed
//! scheduling, placement and routing of every qubit movement on the tiled
//! quantum architecture (the `qspr` baseline crate in this workspace). LEQA
//! instead estimates the latency from *neighbourhood population counts*:
//! each qubit is assigned a hypothetical presence zone sized by its
//! interaction degree, zones are dropped uniformly at random on the fabric,
//! and the expected overlap statistics feed an M/M/1 congestion model that
//! prices the average CNOT routing latency. Adding that price to the gate
//! delays and re-running a critical-path pass over the dependency graph
//! yields the estimate (Eq. 1 / Algorithm 1).
//!
//! # Quick start: the `Session` façade
//!
//! The supported entry point for applications is the request/response
//! layer in the `leqa-api` crate (re-exported as `leqa_repro::api`): a
//! `Session` owns the fabric dimensions, physical parameters and
//! estimator options, caches per-program profiles by content hash, and
//! answers typed requests (see `API.md` at the workspace root):
//!
//! ```text
//! use leqa_api::{ProgramSpec, Session};
//!
//! let session = Session::builder().build()?;          // 60×60, Table 1 params
//! let response = session.estimate(
//!     &leqa_api::EstimateRequest::new(ProgramSpec::bench("8bitadder")),
//! )?;
//! println!("{}", response.to_json().encode());            // versioned JSON
//! ```
//!
//! This crate is the engine underneath: building blocks for callers that
//! need the raw Algorithm 1 pipeline (the `qspr` differential tests, the
//! bench harness, the sweep engine) without the service framing.
//!
//! # Engine-level use
//!
//! ```
//! use leqa::Estimator;
//! use leqa_circuit::{decompose::lower_to_ft, Circuit, Gate, Qodg, QubitId};
//! use leqa_fabric::{FabricDims, PhysicalParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small program: Toffoli then CNOT.
//! let mut c = Circuit::new(3);
//! c.push(Gate::toffoli(QubitId(0), QubitId(1), QubitId(2))?)?;
//! c.push(Gate::cnot(QubitId(0), QubitId(2))?)?;
//! let ft = lower_to_ft(&c)?;
//! let qodg = Qodg::from_ft_circuit(&ft);
//!
//! let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
//! let estimate = estimator.estimate(&qodg)?;
//! assert!(estimate.latency.as_f64() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Estimating one program on many fabrics? Build a [`ProgramProfile`]
//! once (or cache its owned [`ProfileData`]) and use
//! [`Estimator::estimate_with_profile`] or the amortised engine in
//! [`sweep`].
//!
//! # Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | Eqs. 6–7 (presence zones) | [`presence`] |
//! | Eqs. 4–5 (coverage statistics `P_{x,y}`, `E[S_q]`) | [`coverage`] |
//! | Eqs. 8–11 (M/M/1 channel congestion) | [`queue`] |
//! | Eqs. 13–16 (TSP-bound Hamiltonian path, `d_uncong`) | [`tsp`] |
//! | Eqs. 1–2 + Algorithm 1 | [`Estimator`] |

// `deny` rather than `forbid`: the persistent worker pool needs one
// documented lifetime-erasing `transmute` (see `pool`); everything else
// stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
mod error;
mod estimator;
pub mod exec;
pub mod meter;
pub mod pool;
pub mod presence;
mod profile;
pub mod queue;
pub mod report;
pub mod stream;
pub mod sweep;
pub mod tsp;

pub use error::EstimateError;
pub use estimator::{Estimate, Estimator, EstimatorOptions, ZoneRounding};
pub use profile::{ProfileData, ProgramProfile};
pub use stream::{FnSource, GateSource, IigAccumulator, StreamingProfileBuilder};
