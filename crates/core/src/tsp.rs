//! The uncongested routing latency `d_uncong` (§3.2, Eqs. 12–16).
//!
//! Inside its presence zone a qubit must visit its `M_i` partners, i.e.
//! traverse a shortest Hamiltonian path through `M_i + 1` random points.
//! Exact expectation is NP-hard, so the paper brackets the random-TSP tour
//! length with the classical bounds (for `n ≫ 1` points in the unit square)
//!
//! * lower: `0.708·√n + 0.551` (Eq. 13)
//! * upper: `0.718·√n + 0.731` (Eq. 14)
//!
//! averages them (`0.713·√n + 0.641`), rescales by the zone side `√B_i`,
//! and removes one tour edge with the factor `(M_i − 1)/M_i` to get the
//! Hamiltonian-path estimate `E[l_ham,i]` (Eq. 15). Dividing by the qubit
//! speed and the operation count gives the per-operation latency
//! `d_uncong,i = E[l_ham,i] / (v·M_i)` (Eq. 16), and the strength-weighted
//! average over all qubits is `d_uncong` (Eq. 12).

use leqa_circuit::{Iig, QubitId};
use leqa_fabric::Micros;

use crate::presence::zone_area;

/// Coefficients of the random-TSP lower bound (Eq. 13).
pub const TSP_LOWER: (f64, f64) = (0.708, 0.551);
/// Coefficients of the random-TSP upper bound (Eq. 14).
pub const TSP_UPPER: (f64, f64) = (0.718, 0.731);
/// Midpoint coefficients used by Eq. 15.
pub const TSP_MID: (f64, f64) = (0.713, 0.641);

/// Expected random-TSP tour length through `n` uniform points in the unit
/// square, by the midpoint of Eqs. 13–14.
#[inline]
pub fn expected_tsp_tour(n: f64) -> f64 {
    TSP_MID.0 * n.sqrt() + TSP_MID.1
}

/// `E[l_ham,i]` (Eq. 15): expected shortest-Hamiltonian-path length of
/// qubit `i` with `m` IIG neighbours inside its own presence zone.
///
/// Qubits with `m = 0` never route for a CNOT, so their path length is 0.
/// `m = 1` also yields 0 through the paper's `(M−1)/M` tour-to-path factor.
///
/// # Examples
///
/// ```
/// use leqa::tsp::expected_hamiltonian_path;
///
/// assert_eq!(expected_hamiltonian_path(0), 0.0);
/// assert_eq!(expected_hamiltonian_path(1), 0.0);
/// let l5 = expected_hamiltonian_path(5);
/// // √6·(0.713·√6 + 0.641)·(4/5)
/// let expect = 6f64.sqrt() * (0.713 * 6f64.sqrt() + 0.641) * 0.8;
/// assert!((l5 - expect).abs() < 1e-12);
/// ```
pub fn expected_hamiltonian_path(m: u64) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let b_i = zone_area(m);
    let points = (m + 1) as f64;
    b_i.sqrt() * expected_tsp_tour(points) * (m as f64 - 1.0) / m as f64
}

/// `d_uncong,i` (Eq. 16): the average uncongested routing latency per
/// operation for qubit `i`, given the fabric's qubit speed `v` (ULB edges
/// per µs).
///
/// Returns zero for `m = 0` (no routing happens at all).
pub fn uncongested_delay_for(m: u64, qubit_speed: f64) -> Micros {
    if m == 0 {
        return Micros::ZERO;
    }
    Micros::new(expected_hamiltonian_path(m) / (qubit_speed * m as f64))
}

/// `d_uncong` (Eq. 12): the interaction-strength-weighted average of the
/// per-qubit `d_uncong,i`.
///
/// Returns `None` when the circuit has no two-qubit operations.
pub fn uncongested_delay(iig: &Iig, qubit_speed: f64) -> Option<Micros> {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..iig.num_qubits() {
        let q = QubitId(i);
        let strength = iig.strength(q) as f64;
        if strength > 0.0 {
            num += strength * uncongested_delay_for(iig.degree(q), qubit_speed).as_f64();
            den += strength;
        }
    }
    (den > 0.0).then(|| Micros::new(num / den))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;
    use proptest::prelude::*;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn bounds_bracket_the_midpoint() {
        for n in 2..100u64 {
            let n = n as f64;
            let lower = TSP_LOWER.0 * n.sqrt() + TSP_LOWER.1;
            let upper = TSP_UPPER.0 * n.sqrt() + TSP_UPPER.1;
            let mid = expected_tsp_tour(n);
            assert!(lower < mid && mid < upper);
            assert!((mid - (lower + upper) / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn path_length_grows_with_degree() {
        let mut prev = expected_hamiltonian_path(1);
        for m in 2..200u64 {
            let cur = expected_hamiltonian_path(m);
            assert!(cur > prev, "m={m}");
            prev = cur;
        }
    }

    #[test]
    fn degenerate_degrees() {
        assert_eq!(expected_hamiltonian_path(0), 0.0);
        assert_eq!(expected_hamiltonian_path(1), 0.0);
        assert_eq!(uncongested_delay_for(0, 0.001), Micros::ZERO);
        assert_eq!(uncongested_delay_for(1, 0.001), Micros::ZERO);
    }

    #[test]
    fn dac13_scale_sanity() {
        // With v = 0.001 and M = 5 the per-op latency should be on the order
        // of 1 ms — comparable to (but below) the 4930 µs CNOT delay.
        let d = uncongested_delay_for(5, 0.001);
        assert!(d.as_f64() > 100.0 && d.as_f64() < 5000.0, "{d}");
    }

    #[test]
    fn weighted_average_over_iig() {
        // Hub q0 with 3 spokes; spokes have m=1 → d=0, hub has m=3.
        let mut ft = FtCircuit::new(4);
        for i in 1..4 {
            ft.push_cnot(q(0), q(i)).unwrap();
        }
        let iig = Iig::from_ft_circuit(&ft);
        let v = 0.001;
        let hub = uncongested_delay_for(3, v).as_f64();
        // weights: hub strength 3, spokes 1 each.
        let expected = 3.0 * hub / (3.0 + 3.0);
        let got = uncongested_delay(&iig, v).unwrap().as_f64();
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn no_interactions_yields_none() {
        let ft = FtCircuit::new(3);
        let iig = Iig::from_ft_circuit(&ft);
        assert_eq!(uncongested_delay(&iig, 0.001), None);
    }

    proptest! {
        #[test]
        fn delay_scales_inversely_with_speed(m in 2u64..100, v in 1e-4f64..1.0) {
            let d1 = uncongested_delay_for(m, v).as_f64();
            let d2 = uncongested_delay_for(m, 2.0 * v).as_f64();
            prop_assert!((d1 / d2 - 2.0).abs() < 1e-9);
        }

        #[test]
        fn per_op_delay_decreases_then_settles(m in 2u64..500) {
            // E[l]/M ~ (√(M+1)·√(M+1))/M → per-op latency is bounded:
            // it tends to 0.713/v from above as M grows.
            let v = 0.001;
            let d = uncongested_delay_for(m, v).as_f64();
            prop_assert!(d > 0.0);
            prop_assert!(d < 5.0 / v); // generous upper bound
        }
    }
}
