//! Chunked, memory-bounded profile construction from a gate stream.
//!
//! The materialized pipeline (`Circuit` → `lower_to_ft` →
//! [`Qodg`](leqa_circuit::Qodg) → [`ProfileData::new`]) holds the whole
//! op list — and the QODG's
//! node/edge arrays — in memory at once. At cryptographic scale
//! (`shor_2048` lowers to tens of millions of FT ops) that costs gigabytes
//! for quantities that are, mathematically, *streaming aggregates*: the
//! Eq. 7 zone average and Eq. 12 numerators are per-qubit sums over the
//! IIG, the IIG itself is a multiset of CNOT endpoint pairs, and the
//! routing-aware critical path (Algorithm 1 line 19) needs only the
//! frontier distance per wire.
//!
//! This module computes all three directly from a [`GateSource`] — an
//! iterator of [`FtOp`]s plus a declared register width — in memory
//! bounded by `O(qubits + unique IIG edges)`, never by the op count:
//!
//! - [`IigAccumulator`] buffers normalized CNOT endpoint pairs in fixed
//!   chunks, sorts and run-length-encodes each chunk, and merges the
//!   sorted runs geometrically (LSM-style) so the final single run is the
//!   same sorted unique edge list a whole-stream sort+dedup would produce.
//! - [`StreamingProfileBuilder`] feeds the accumulator and finishes into a
//!   [`ProfileData`] via [`Iig::from_weighted_edges`] — *bit-identical* to
//!   [`ProfileData::new`] on the materialized QODG of the same stream,
//!   regardless of chunk size (the differential suite in
//!   `tests/streaming.rs` pins this).
//! - `streaming_critical_path` (crate-internal) replays the stream once more with only a
//!   per-wire `(distance, census)` frontier, reproducing the exact
//!   first-predecessor-wins / strictly-greater-replaces tie-breaking of
//!   the QODG walk, so the resulting latency census is byte-identical.
//!
//! The [`Estimator`](crate::Estimator) front door is
//! [`estimate_stream`](crate::Estimator::estimate_stream); `leqa-api`
//! auto-selects it above a session-configurable op-count threshold.

use leqa_circuit::{CircuitError, CriticalPath, FtCircuit, FtOp, Iig};
use leqa_fabric::Micros;

use crate::estimator::OpDelays;
use crate::{EstimateError, ProfileData};

/// Default pair-buffer capacity for [`IigAccumulator`]: 64 Ki pairs
/// (512 KiB) — large enough that chunk sorting is a rounding error next
/// to gate generation, small enough to be irrelevant to peak RSS.
pub const DEFAULT_CHUNK_PAIRS: usize = 64 * 1024;

/// A replayable stream of lowered FT ops with a declared register width.
///
/// The contract mirrors a materialized [`FtCircuit`]: every op must touch
/// only qubits below [`num_qubits`](Self::num_qubits), and repeated
/// [`gates`](Self::gates) calls must yield the same sequence (the
/// estimator takes two passes — profile, then critical path).
pub trait GateSource {
    /// The declared register width (`Q` in the paper).
    fn num_qubits(&self) -> u32;

    /// A fresh pass over the op sequence.
    fn gates(&self) -> impl Iterator<Item = FtOp>;
}

/// The trivial source: a materialized circuit replayed from its op slice.
impl GateSource for FtCircuit {
    fn num_qubits(&self) -> u32 {
        FtCircuit::num_qubits(self)
    }

    fn gates(&self) -> impl Iterator<Item = FtOp> {
        self.ops().iter().copied()
    }
}

/// Adapts a generator closure into a [`GateSource`], for workloads that
/// produce their op stream lazily (e.g. `shor_1024` in `leqa-workloads`)
/// and never hold it in memory.
///
/// # Examples
///
/// ```
/// use leqa::stream::{FnSource, GateSource};
/// use leqa_circuit::{FtOp, QubitId};
///
/// let source = FnSource::new(3, || {
///     (0..2).map(|i| FtOp::Cnot {
///         control: QubitId(i),
///         target: QubitId(i + 1),
///     })
/// });
/// assert_eq!(source.num_qubits(), 3);
/// assert_eq!(source.gates().count(), 2);
/// assert_eq!(source.gates().count(), 2, "replayable");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FnSource<F> {
    num_qubits: u32,
    make: F,
}

impl<F, I> FnSource<F>
where
    F: Fn() -> I,
    I: Iterator<Item = FtOp>,
{
    /// Wraps `make`, which must yield the same sequence on every call.
    pub fn new(num_qubits: u32, make: F) -> Self {
        FnSource { num_qubits, make }
    }
}

impl<F, I> GateSource for FnSource<F>
where
    F: Fn() -> I,
    I: Iterator<Item = FtOp>,
{
    fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    fn gates(&self) -> impl Iterator<Item = FtOp> {
        (self.make)()
    }
}

/// Incremental CSR-IIG construction: buffered chunks of normalized CNOT
/// endpoint pairs, each sorted and run-length-encoded on flush, with the
/// sorted runs merged geometrically so total work stays `O(n log n)` and
/// live memory stays proportional to the *unique* edge count.
///
/// The final [`finish`](Self::finish) produces an [`Iig`] bit-identical to
/// [`Iig::from_qodg`] on the materialized program: a single sorted unique
/// `(lo, hi, weight)` run is the canonical form both paths normalize to.
#[derive(Debug, Clone)]
pub struct IigAccumulator {
    num_qubits: u32,
    /// Unsorted normalized `(lo, hi)` pairs awaiting a chunk flush.
    chunk: Vec<(u32, u32)>,
    chunk_pairs: usize,
    /// Sorted unique weighted runs, newest last, merged geometrically.
    runs: Vec<Vec<(u32, u32, u64)>>,
    /// First stream violation seen; reported once at [`finish`](Self::finish).
    invalid: Option<EstimateError>,
}

impl IigAccumulator {
    /// An empty accumulator for a `num_qubits`-wide register with the
    /// default chunk size.
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        IigAccumulator::with_chunk_pairs(num_qubits, DEFAULT_CHUNK_PAIRS)
    }

    /// Like [`new`](Self::new) with an explicit chunk capacity in pairs
    /// (clamped to at least 1). Chunk size never changes the finished
    /// IIG — only the sort/merge schedule.
    #[must_use]
    pub fn with_chunk_pairs(num_qubits: u32, chunk_pairs: usize) -> Self {
        let chunk_pairs = chunk_pairs.max(1);
        IigAccumulator {
            num_qubits,
            chunk: Vec::with_capacity(chunk_pairs),
            chunk_pairs,
            runs: Vec::new(),
            invalid: None,
        }
    }

    /// Records one op. Only CNOTs contribute edges; one-qubit ops are
    /// still range-checked so a malformed stream cannot slip through the
    /// profile pass unnoticed.
    pub fn push(&mut self, op: FtOp) {
        if self.invalid.is_some() {
            return;
        }
        match op {
            FtOp::OneQubit { target, .. } => {
                if target.0 >= self.num_qubits {
                    self.invalid = Some(EstimateError::InvalidStream {
                        qubit: target.0,
                        num_qubits: self.num_qubits,
                    });
                }
            }
            FtOp::Cnot { control, target } => {
                let (c, t) = (control.0, target.0);
                if c >= self.num_qubits || t >= self.num_qubits || c == t {
                    self.invalid = Some(EstimateError::InvalidStream {
                        qubit: if c >= self.num_qubits || c == t { c } else { t },
                        num_qubits: self.num_qubits,
                    });
                    return;
                }
                let pair = if c <= t { (c, t) } else { (t, c) };
                self.chunk.push(pair);
                if self.chunk.len() >= self.chunk_pairs {
                    self.flush_chunk();
                }
            }
        }
    }

    /// Sorts and run-length-encodes the buffered chunk into a weighted
    /// run, then restores the geometric invariant (each run at least
    /// twice the size of the one stacked on it) by merging from the top.
    fn flush_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        self.chunk.sort_unstable();
        let mut run: Vec<(u32, u32, u64)> = Vec::new();
        for &(lo, hi) in &self.chunk {
            match run.last_mut() {
                Some((a, b, w)) if *a == lo && *b == hi => *w += 1,
                _ => run.push((lo, hi, 1)),
            }
        }
        self.chunk.clear();
        self.runs.push(run);
        while self.runs.len() >= 2
            && self.runs[self.runs.len() - 2].len() <= 2 * self.runs[self.runs.len() - 1].len()
        {
            let top = self.runs.pop().expect("len checked");
            let below = self.runs.pop().expect("len checked");
            self.runs.push(merge_runs(below, top));
        }
    }

    /// Merges all runs and builds the CSR [`Iig`].
    ///
    /// # Errors
    ///
    /// [`EstimateError::InvalidStream`] if any pushed op referenced a
    /// qubit at or beyond `num_qubits`, or a CNOT was a self-loop.
    pub fn finish(mut self) -> Result<Iig, EstimateError> {
        if let Some(err) = self.invalid {
            return Err(err);
        }
        self.flush_chunk();
        let mut merged = self.runs.pop().unwrap_or_default();
        while let Some(below) = self.runs.pop() {
            merged = merge_runs(below, merged);
        }
        // `merged` is already sorted and unique, so the normalize/sort/
        // merge inside `from_weighted_edges` is a no-op: the CSR comes
        // out bit-identical to the circuit-built IIG (pinned by
        // `weighted_edges_round_trip_bit_identically` in leqa-circuit).
        Iig::from_weighted_edges(self.num_qubits, merged).map_err(|e| match e {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => EstimateError::InvalidStream {
                qubit: qubit.0,
                num_qubits,
            },
            CircuitError::DuplicateOperand { qubit } => EstimateError::InvalidStream {
                qubit: qubit.0,
                num_qubits: self.num_qubits,
            },
            // `from_weighted_edges` documents only the two arms above.
            _ => EstimateError::InvalidStream {
                qubit: self.num_qubits,
                num_qubits: self.num_qubits,
            },
        })
    }
}

/// Merges two sorted unique weighted runs, summing weights on equal keys.
fn merge_runs(a: Vec<(u32, u32, u64)>, b: Vec<(u32, u32, u64)>) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(&(xa, ya, _)), Some(&(xb, yb, _))) => {
                if (xa, ya) == (xb, yb) {
                    let (x, y, wa) = ai.next().expect("peeked");
                    let (_, _, wb) = bi.next().expect("peeked");
                    out.push((x, y, wa + wb));
                } else if (xa, ya) < (xb, yb) {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ai.next().expect("peeked")),
            (None, Some(_)) => out.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// One-pass construction of [`ProfileData`] from an op stream: Algorithm 1
/// lines 1–8 (IIG, Eq. 7 zone average, Eq. 12 numerators) without ever
/// materializing the op list or a QODG.
///
/// # Examples
///
/// ```
/// use leqa::stream::StreamingProfileBuilder;
/// use leqa::ProfileData;
/// use leqa_circuit::{FtCircuit, Qodg, QubitId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
///
/// let mut builder = StreamingProfileBuilder::new(3);
/// for &op in ft.ops() {
///     builder.push(op);
/// }
/// let streamed = builder.finish()?;
/// let materialized = ProfileData::new(&Qodg::from_ft_circuit(&ft));
/// assert_eq!(streamed, materialized, "bit-identical, by construction");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingProfileBuilder {
    acc: IigAccumulator,
    ops: u64,
}

impl StreamingProfileBuilder {
    /// An empty builder for a `num_qubits`-wide register.
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        StreamingProfileBuilder {
            acc: IigAccumulator::new(num_qubits),
            ops: 0,
        }
    }

    /// Like [`new`](Self::new) with an explicit accumulator chunk size
    /// (in pairs; the finished profile is chunk-size-independent).
    #[must_use]
    pub fn with_chunk_pairs(num_qubits: u32, chunk_pairs: usize) -> Self {
        StreamingProfileBuilder {
            acc: IigAccumulator::with_chunk_pairs(num_qubits, chunk_pairs),
            ops: 0,
        }
    }

    /// Feeds one op.
    pub fn push(&mut self, op: FtOp) {
        self.ops += 1;
        self.acc.push(op);
    }

    /// Ops pushed so far (for progress reporting and gates/sec metrics).
    #[must_use]
    pub fn ops_seen(&self) -> u64 {
        self.ops
    }

    /// Builds the [`ProfileData`].
    ///
    /// # Errors
    ///
    /// [`EstimateError::InvalidStream`] if any op was inconsistent with
    /// the declared register width.
    pub fn finish(self) -> Result<ProfileData, EstimateError> {
        Ok(ProfileData::with_iig(self.acc.finish()?))
    }
}

/// The per-wire op-type census carried along the streaming frontier —
/// the `N^critical` counters of Eq. 1 for the best path ending on a wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Census {
    cnot: u64,
    one_qubit: [u64; 8],
}

impl Census {
    fn plus(mut self, op: &FtOp) -> Census {
        match op {
            FtOp::Cnot { .. } => self.cnot += 1,
            FtOp::OneQubit { kind, .. } => self.one_qubit[kind.index()] += 1,
        }
        self
    }
}

/// Algorithm 1 line 19 over a stream: the routing-aware critical path in
/// `O(qubits)` memory, reproducing the QODG walk's tie-breaking exactly.
///
/// Per wire the frontier holds the distance and op-type census of the
/// longest path ending in the last op that touched it (`None` while the
/// wire is untouched, i.e. its predecessor is still the start node). For
/// each op, candidates are scanned in operand order (control, then
/// target) — the same order the QODG records predecessor edges — taking
/// the first and replacing only on *strictly greater* distance, exactly
/// like `Qodg::critical_path_reuse`; merged parallel edges there dedup to
/// one predecessor, which cannot change this selection because duplicate
/// candidates carry identical distances.
///
/// The returned [`CriticalPath`] matches the materialized one in
/// `length`, `cnot_count` and `one_qubit_counts`; `path` is empty (the
/// stream has no node identities to name).
///
/// # Errors
///
/// [`EstimateError::InvalidStream`] on an out-of-range operand or a
/// self-loop CNOT.
pub(crate) fn streaming_critical_path(
    num_qubits: u32,
    ops: impl Iterator<Item = FtOp>,
    delays: &OpDelays,
) -> Result<CriticalPath, EstimateError> {
    let mut frontier: Vec<Option<(Micros, Census)>> = vec![None; num_qubits as usize];
    let invalid = |qubit: u32| EstimateError::InvalidStream { qubit, num_qubits };

    for op in ops {
        let mut best: Option<(Micros, Census)> = None;
        for q in op.qubits() {
            if q.0 >= num_qubits {
                return Err(invalid(q.0));
            }
            let cand = frontier[q.index()].unwrap_or((Micros::ZERO, Census::default()));
            match best {
                Some((d, _)) if cand.0 <= d => {}
                _ => best = Some(cand),
            }
        }
        if let FtOp::Cnot { control, target } = op {
            if control == target {
                return Err(invalid(control.0));
            }
        }
        let (dist, census) = best.expect("every FtOp has at least one operand");
        let next = (dist + delays.of(&op), census.plus(&op));
        for q in op.qubits() {
            frontier[q.index()] = Some(next);
        }
    }

    // The end node: zero delay, predecessors in wire-index order.
    let mut best = (Micros::ZERO, Census::default());
    for state in frontier.iter().flatten() {
        if state.0 > best.0 {
            best = *state;
        }
    }
    Ok(CriticalPath {
        length: best.0,
        cnot_count: best.1.cnot,
        one_qubit_counts: best.1.one_qubit,
        path: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{routing_aware_critical_path, EstimatorOptions};
    use crate::Estimator;
    use leqa_circuit::{CriticalPathScratch, Qodg, QubitId};
    use leqa_fabric::{FabricDims, OneQubitKind, PhysicalParams};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    /// A small circuit with ties, fan-in and an idle wire: enough
    /// structure to exercise every tie-breaking branch.
    fn mixed_circuit() -> FtCircuit {
        let mut ft = FtCircuit::new(6);
        ft.push_one_qubit(OneQubitKind::H, q(0)).unwrap();
        ft.push_cnot(q(0), q(1)).unwrap();
        ft.push_cnot(q(2), q(3)).unwrap();
        ft.push_one_qubit(OneQubitKind::T, q(3)).unwrap();
        ft.push_cnot(q(1), q(3)).unwrap();
        ft.push_cnot(q(3), q(1)).unwrap(); // repeated pair, reversed
        ft.push_one_qubit(OneQubitKind::X, q(4)).unwrap();
        ft.push_cnot(q(4), q(0)).unwrap();
        ft
    }

    #[test]
    fn streaming_profile_is_bit_identical_to_materialized() {
        let ft = mixed_circuit();
        let qodg = Qodg::from_ft_circuit(&ft);
        let materialized = ProfileData::new(&qodg);
        for chunk in [1, 2, 3, 4096] {
            let mut b = StreamingProfileBuilder::with_chunk_pairs(6, chunk);
            for &op in ft.ops() {
                b.push(op);
            }
            assert_eq!(b.ops_seen(), ft.ops().len() as u64);
            assert_eq!(b.finish().unwrap(), materialized, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_and_cnot_free_streams_profile_identically() {
        for ft in [FtCircuit::new(4), {
            let mut ft = FtCircuit::new(4);
            ft.push_one_qubit(OneQubitKind::H, q(2)).unwrap();
            ft
        }] {
            let mut b = StreamingProfileBuilder::new(4);
            for &op in ft.ops() {
                b.push(op);
            }
            let materialized = ProfileData::new(&Qodg::from_ft_circuit(&ft));
            assert_eq!(b.finish().unwrap(), materialized);
        }
    }

    #[test]
    fn streaming_critical_path_matches_the_qodg_walk() {
        let ft = mixed_circuit();
        let qodg = Qodg::from_ft_circuit(&ft);
        let params = PhysicalParams::dac13();
        for update in [true, false] {
            let options = EstimatorOptions {
                update_critical_path: update,
                ..EstimatorOptions::default()
            };
            let l_cnot = Micros::new(3.25);
            let mut scratch = CriticalPathScratch::new();
            let walked =
                routing_aware_critical_path(&params, &options, &qodg, l_cnot, &mut scratch);
            let delays = OpDelays::new(&params, &options, l_cnot);
            let streamed = streaming_critical_path(6, ft.ops().iter().copied(), &delays).unwrap();
            assert_eq!(streamed.length, walked.length);
            assert_eq!(streamed.cnot_count, walked.cnot_count);
            assert_eq!(streamed.one_qubit_counts, walked.one_qubit_counts);
            assert!(streamed.path.is_empty());
        }
    }

    #[test]
    fn estimate_stream_matches_estimate_exactly() {
        let ft = mixed_circuit();
        let qodg = Qodg::from_ft_circuit(&ft);
        let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
        let materialized = estimator.estimate(&qodg).unwrap();
        let streamed = estimator.estimate_stream(&ft).unwrap();
        assert_eq!(streamed.latency, materialized.latency);
        assert_eq!(streamed.l_cnot_avg, materialized.l_cnot_avg);
        assert_eq!(streamed.d_uncong, materialized.d_uncong);
        assert_eq!(streamed.avg_zone_area, materialized.avg_zone_area);
        assert_eq!(streamed.zone_side, materialized.zone_side);
        assert_eq!(streamed.esq, materialized.esq);
        assert_eq!(streamed.qubit_count, materialized.qubit_count);
        assert_eq!(streamed.critical.length, materialized.critical.length);
        assert_eq!(
            streamed.critical.cnot_count,
            materialized.critical.cnot_count
        );
        assert_eq!(
            streamed.critical.one_qubit_counts,
            materialized.critical.one_qubit_counts
        );
    }

    #[test]
    fn malformed_streams_get_a_typed_error() {
        // Out-of-range one-qubit target, reported at finish.
        let mut b = StreamingProfileBuilder::new(2);
        b.push(FtOp::OneQubit {
            kind: OneQubitKind::H,
            target: q(2),
        });
        assert_eq!(
            b.finish().unwrap_err(),
            EstimateError::InvalidStream {
                qubit: 2,
                num_qubits: 2
            }
        );

        // Self-loop CNOT.
        let mut b = StreamingProfileBuilder::new(2);
        b.push(FtOp::Cnot {
            control: q(1),
            target: q(1),
        });
        assert!(matches!(
            b.finish().unwrap_err(),
            EstimateError::InvalidStream { qubit: 1, .. }
        ));

        // Same violations through the critical-path pass.
        let params = PhysicalParams::dac13();
        let options = EstimatorOptions::default();
        let delays = OpDelays::new(&params, &options, Micros::ZERO);
        let bad = [FtOp::Cnot {
            control: q(0),
            target: q(7),
        }];
        assert_eq!(
            streaming_critical_path(2, bad.iter().copied(), &delays).unwrap_err(),
            EstimateError::InvalidStream {
                qubit: 7,
                num_qubits: 2
            }
        );
    }

    #[test]
    fn fn_source_replays_and_estimates() {
        let ft = mixed_circuit();
        let ops: Vec<FtOp> = ft.ops().to_vec();
        let source = FnSource::new(6, move || ops.clone().into_iter());
        let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
        let a = estimator.estimate_stream(&source).unwrap();
        let b = estimator.estimate_stream(&ft).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.critical, b.critical);
    }

    #[test]
    fn run_merging_is_associative_with_the_weights() {
        let a = vec![(0, 1, 2), (1, 2, 1)];
        let b = vec![(0, 1, 1), (2, 3, 4)];
        assert_eq!(
            merge_runs(a.clone(), b.clone()),
            vec![(0, 1, 3), (1, 2, 1), (2, 3, 4)]
        );
        assert_eq!(merge_runs(a.clone(), b.clone()), merge_runs(b, a));
    }
}
