//! Small execution utilities shared by the sweep engine, the batch
//! endpoint and the bench harness.

/// Maps `f` over `items` on the process-wide persistent worker pool
/// ([`crate::pool::Pool::global`]), preserving order. `f` must be freely
/// callable from any thread; results are identical to
/// `items.iter().map(f)` — only wall-clock changes.
///
/// This used to spawn fresh scoped threads per call; it now dispatches
/// to the shared pool so thread startup is amortised across requests
/// (see `pool`'s docs for the execution model).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    crate::pool::Pool::global().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }
}
