//! Small execution utilities shared by the sweep engine and the bench
//! harness.

/// Maps `f` over `items` on scoped worker threads (one per core, capped by
/// the item count), preserving order. Falls back to a plain serial map
/// when only one worker is available. `f` must be freely callable from any
/// thread; results are identical to `items.iter().map(f)` — only
/// wall-clock changes.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let results: Vec<std::sync::Mutex<Option<U>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *results[i].lock().expect("no poisoning") = Some(f(&items[i]));
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoning")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x| x);
        assert!(out.is_empty());
    }
}
