//! Presence zones (§3.1, Eqs. 6–7).
//!
//! Each logical qubit `n_i` is assumed to perform most of its interactions
//! inside a hypothetical square *presence zone* holding itself and its
//! `M_i = deg(n_i)` IIG neighbours: `B_i = √(M_i+1) × √(M_i+1) = M_i + 1`
//! (Eq. 6). The fabric-wide average zone area `B` weights each `B_i` by the
//! qubit's interaction strength `Σ_j w(e_ij)` (Eq. 7), so busy qubits
//! dominate.

use leqa_circuit::{Iig, QubitId};

/// The presence-zone area of a qubit with `m` IIG neighbours (Eq. 6):
/// `B_i = M_i + 1` (the `+1` accounts for the qubit itself).
///
/// # Examples
///
/// ```
/// assert_eq!(leqa::presence::zone_area(5), 6.0);
/// assert_eq!(leqa::presence::zone_area(0), 1.0);
/// ```
#[inline]
pub fn zone_area(m: u64) -> f64 {
    (m + 1) as f64
}

/// The average presence-zone area `B` (Eq. 7): the interaction-strength-
/// weighted mean of the `B_i`.
///
/// Returns `None` when the circuit has no two-qubit operations at all
/// (every weight is zero), in which case no CNOT routing latency exists to
/// estimate.
///
/// # Examples
///
/// ```
/// use leqa_circuit::{FtCircuit, Iig, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// let iig = Iig::from_ft_circuit(&ft);
/// // Both interacting qubits have M=1 → B_i = 2 → B = 2.
/// assert_eq!(leqa::presence::average_zone_area(&iig), Some(2.0));
/// # Ok(())
/// # }
/// ```
pub fn average_zone_area(iig: &Iig) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..iig.num_qubits() {
        let q = QubitId(i);
        let strength = iig.strength(q) as f64;
        if strength > 0.0 {
            num += strength * zone_area(iig.degree(q));
            den += strength;
        }
    }
    (den > 0.0).then(|| num / den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn zone_area_matches_eq6() {
        for m in 0..50u64 {
            let side = ((m + 1) as f64).sqrt();
            assert!((zone_area(m) - side * side).abs() < 1e-12);
        }
    }

    #[test]
    fn average_is_weighted_by_strength() {
        // q0–q1 interact 3×, q1–q2 once.
        let mut ft = FtCircuit::new(3);
        for _ in 0..3 {
            ft.push_cnot(q(0), q(1)).unwrap();
        }
        ft.push_cnot(q(1), q(2)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        // M0=1 (B=2, s=3), M1=2 (B=3, s=4), M2=1 (B=2, s=1)
        let expected = (3.0 * 2.0 + 4.0 * 3.0 + 1.0 * 2.0) / (3.0 + 4.0 + 1.0);
        assert!((average_zone_area(&iig).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn no_interactions_yields_none() {
        let ft = FtCircuit::new(4);
        let iig = Iig::from_ft_circuit(&ft);
        assert_eq!(average_zone_area(&iig), None);
    }

    #[test]
    fn single_pair_average_is_two() {
        let mut ft = FtCircuit::new(2);
        ft.push_cnot(q(0), q(1)).unwrap();
        let iig = Iig::from_ft_circuit(&ft);
        assert_eq!(average_zone_area(&iig), Some(2.0));
    }

    #[test]
    fn average_between_min_and_max_zone() {
        // A hub: q0 interacts with q1..q5 once each.
        let mut ft = FtCircuit::new(6);
        for i in 1..6 {
            ft.push_cnot(q(0), q(i)).unwrap();
        }
        let iig = Iig::from_ft_circuit(&ft);
        let b = average_zone_area(&iig).unwrap();
        // Spokes have B=2, the hub has B=6.
        assert!(b > 2.0 && b < 6.0);
        // Hub weight 5, each spoke weight 1: (5*6 + 5*1*2)/10 = 4.
        assert!((b - 4.0).abs() < 1e-12);
    }
}
