//! Per-qubit model reports (the quantities of §3.1–3.2, one row per
//! logical qubit).
//!
//! Useful for understanding *why* an estimate came out the way it did:
//! which qubits dominate `B` and `d_uncong`, and how interaction load is
//! distributed — the per-qubit view behind Fig. 3's presence-zone
//! picture.

use leqa_circuit::{Iig, Qodg, QubitId};
use leqa_fabric::Micros;

use crate::{presence, tsp};

/// The presence-zone model quantities of one logical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct QubitZone {
    /// The qubit.
    pub qubit: QubitId,
    /// `M_i`: IIG degree (distinct interaction partners).
    pub degree: u64,
    /// `Σ_j w(e_ij)`: total two-qubit ops involving this qubit.
    pub strength: u64,
    /// `B_i` (Eq. 6): presence-zone area.
    pub zone_area: f64,
    /// `E[l_ham,i]` (Eq. 15): expected intra-zone Hamiltonian path.
    pub expected_path: f64,
    /// `d_uncong,i` (Eq. 16): uncongested per-op routing latency.
    pub uncongested_delay: Micros,
}

/// Computes the per-qubit zone table for a program.
///
/// # Examples
///
/// ```
/// use leqa::report::zone_report;
/// use leqa_circuit::{FtCircuit, Qodg, QubitId};
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(0), QubitId(2))?;
/// let qodg = Qodg::from_ft_circuit(&ft);
///
/// let report = zone_report(&qodg, 0.001);
/// assert_eq!(report.len(), 3);
/// assert_eq!(report[0].degree, 2); // the hub qubit
/// # Ok(())
/// # }
/// ```
pub fn zone_report(qodg: &Qodg, qubit_speed: f64) -> Vec<QubitZone> {
    let iig = Iig::from_qodg(qodg);
    zone_report_from_iig(&iig, qubit_speed)
}

/// Like [`zone_report`], reusing an already-built IIG.
pub fn zone_report_from_iig(iig: &Iig, qubit_speed: f64) -> Vec<QubitZone> {
    (0..iig.num_qubits())
        .map(|i| {
            let qubit = QubitId(i);
            let degree = iig.degree(qubit);
            QubitZone {
                qubit,
                degree,
                strength: iig.strength(qubit),
                zone_area: presence::zone_area(degree),
                expected_path: tsp::expected_hamiltonian_path(degree),
                uncongested_delay: tsp::uncongested_delay_for(degree, qubit_speed),
            }
        })
        .collect()
}

/// Renders the report as a fixed-width table, strongest qubits first,
/// truncated to `limit` rows. `limit == 0` means *no* limit (all rows);
/// a `limit` beyond the report length is clamped to it. The function is
/// total: every `(report, limit)` pair yields a well-formed table.
#[must_use]
pub fn format_report(report: &[QubitZone], limit: usize) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<&QubitZone> = report.iter().collect();
    rows.sort_by_key(|z| std::cmp::Reverse(z.strength));
    let limit = if limit == 0 {
        rows.len()
    } else {
        limit.min(rows.len())
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>5} {:>9} {:>8} {:>10} {:>14}",
        "qubit", "M_i", "strength", "B_i", "E[l_ham]", "d_uncong(µs)"
    );
    for z in rows.into_iter().take(limit) {
        let _ = writeln!(
            out,
            "{:>6} {:>5} {:>9} {:>8.1} {:>10.3} {:>14.1}",
            z.qubit.to_string(),
            z.degree,
            z.strength,
            z.zone_area,
            z.expected_path,
            z.uncongested_delay.as_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::FtCircuit;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn star() -> Qodg {
        let mut ft = FtCircuit::new(5);
        for i in 1..5 {
            ft.push_cnot(q(0), q(i)).unwrap();
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn hub_dominates_the_report() {
        let report = zone_report(&star(), 0.001);
        assert_eq!(report.len(), 5);
        let hub = &report[0];
        assert_eq!(hub.degree, 4);
        assert_eq!(hub.strength, 4);
        assert_eq!(hub.zone_area, 5.0);
        assert!(hub.uncongested_delay.as_f64() > 0.0);
        // Spokes: degree 1 → zero path by Eq. 15's (M−1)/M factor.
        for spoke in &report[1..] {
            assert_eq!(spoke.degree, 1);
            assert_eq!(spoke.expected_path, 0.0);
        }
    }

    #[test]
    fn report_is_consistent_with_eq12_average() {
        // The strength-weighted mean of the report's d_uncong,i must equal
        // tsp::uncongested_delay.
        let qodg = star();
        let iig = Iig::from_qodg(&qodg);
        let report = zone_report_from_iig(&iig, 0.001);
        let num: f64 = report
            .iter()
            .map(|z| z.strength as f64 * z.uncongested_delay.as_f64())
            .sum();
        let den: f64 = report.iter().map(|z| z.strength as f64).sum();
        let expected = tsp::uncongested_delay(&iig, 0.001).unwrap().as_f64();
        assert!((num / den - expected).abs() < 1e-9);
    }

    #[test]
    fn formatting_sorts_and_truncates() {
        let report = zone_report(&star(), 0.001);
        let text = format_report(&report, 2);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[1].contains("q0")); // hub first
    }

    #[test]
    fn zero_limit_means_all_rows() {
        // Regression: `limit == 0` used to render an empty table (header
        // only), silently swallowing the report.
        let report = zone_report(&star(), 0.001);
        let text = format_report(&report, 0);
        assert_eq!(text.lines().count(), 1 + report.len());
        assert_eq!(text, format_report(&report, report.len()));
    }

    #[test]
    fn oversized_limit_is_clamped() {
        // Regression: `limit > len` must behave exactly like `limit == len`
        // (total function, no padding rows, no panic).
        let report = zone_report(&star(), 0.001);
        assert_eq!(
            format_report(&report, usize::MAX),
            format_report(&report, report.len())
        );
    }

    #[test]
    fn empty_report_formats_to_header_only() {
        for limit in [0, 1, 7] {
            assert_eq!(format_report(&[], limit).lines().count(), 1);
        }
    }
}
