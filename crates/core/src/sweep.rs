//! Fabric-size exploration: Algorithm 1's stated use case ("this value
//! can be changed to find the optimal size for the fabric which results
//! in the minimum delay").

use leqa_circuit::Qodg;
use leqa_fabric::{FabricDims, PhysicalParams};

use crate::{Estimate, Estimator, EstimatorOptions};

/// Outcome of one fabric-size candidate.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The candidate fabric.
    pub dims: FabricDims,
    /// The estimate on that fabric, or `None` when the program does not
    /// fit (fewer ULBs than logical qubits).
    pub estimate: Option<Estimate>,
}

/// Estimates a program across candidate fabrics and returns all points.
///
/// Candidates too small for the program yield `estimate: None` rather
/// than an error, so sweeps can span wide ranges.
pub fn sweep_fabrics(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: impl IntoIterator<Item = FabricDims>,
) -> Vec<SweepPoint> {
    candidates
        .into_iter()
        .map(|dims| {
            let estimate = if (qodg.num_qubits() as u64) <= dims.area() {
                Estimator::with_options(dims, params.clone(), options)
                    .estimate(qodg)
                    .ok()
            } else {
                None
            };
            SweepPoint { dims, estimate }
        })
        .collect()
}

/// Finds the latency-minimal square fabric among `sides`.
///
/// Returns `None` if no candidate fits the program.
///
/// # Examples
///
/// ```
/// use leqa::sweep::optimal_square_fabric;
/// use leqa::EstimatorOptions;
/// use leqa_circuit::{FtCircuit, Qodg, QubitId};
/// use leqa_fabric::PhysicalParams;
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
/// let qodg = Qodg::from_ft_circuit(&ft);
///
/// let best = optimal_square_fabric(
///     &qodg,
///     &PhysicalParams::dac13(),
///     EstimatorOptions::default(),
///     [2, 4, 8, 16],
/// );
/// assert!(best.is_some());
/// # Ok(())
/// # }
/// ```
pub fn optimal_square_fabric(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    sides: impl IntoIterator<Item = u32>,
) -> Option<(FabricDims, Estimate)> {
    let candidates = sides.into_iter().filter_map(|s| FabricDims::new(s, s).ok());
    sweep_fabrics(qodg, params, options, candidates)
        .into_iter()
        .filter_map(|p| p.estimate.map(|e| (p.dims, e)))
        .min_by(|a, b| a.1.latency.as_f64().total_cmp(&b.1.latency.as_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn dense_qodg() -> Qodg {
        let mut ft = FtCircuit::new(20);
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                ft.push_cnot(q(i), q(j)).unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn sweep_marks_undersized_fabrics() {
        let qodg = dense_qodg(); // 20 qubits
        let points = sweep_fabrics(
            &qodg,
            &PhysicalParams::dac13(),
            EstimatorOptions::default(),
            [
                FabricDims::new(4, 4).unwrap(),
                FabricDims::new(10, 10).unwrap(),
            ],
        );
        assert!(points[0].estimate.is_none()); // 16 < 20
        assert!(points[1].estimate.is_some());
    }

    #[test]
    fn optimum_is_the_sweep_minimum() {
        let qodg = dense_qodg();
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let sides = [5u32, 8, 15, 30, 60];
        let (best_dims, best) =
            optimal_square_fabric(&qodg, &params, opts, sides).expect("some fit");
        for p in sweep_fabrics(
            &qodg,
            &params,
            opts,
            sides.iter().filter_map(|&s| FabricDims::new(s, s).ok()),
        ) {
            if let Some(e) = p.estimate {
                assert!(best.latency.as_f64() <= e.latency.as_f64() + 1e-9);
            }
        }
        assert!(best_dims.area() >= 25);
    }

    #[test]
    fn no_fit_returns_none() {
        let qodg = dense_qodg();
        assert!(optimal_square_fabric(
            &qodg,
            &PhysicalParams::dac13(),
            EstimatorOptions::default(),
            [2u32, 3, 4],
        )
        .is_none());
    }
}

/// Like [`sweep_fabrics`], evaluating candidates on scoped worker threads
/// (one per candidate, capped by the platform's available parallelism).
///
/// Estimation is CPU-bound and candidates are independent, so wide sweeps
/// — the paper's fabric-size exploration loop — scale with cores.
pub fn sweep_fabrics_parallel(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: impl IntoIterator<Item = FabricDims>,
) -> Vec<SweepPoint> {
    let candidates: Vec<FabricDims> = candidates.into_iter().collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(candidates.len().max(1));

    let results: Vec<std::sync::Mutex<Option<SweepPoint>>> = candidates
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                let dims = candidates[i];
                let estimate = if (qodg.num_qubits() as u64) <= dims.area() {
                    Estimator::with_options(dims, params.clone(), options)
                        .estimate(qodg)
                        .ok()
                } else {
                    None
                };
                *results[i].lock().expect("no poisoning") = Some(SweepPoint { dims, estimate });
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoning")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    #[test]
    fn parallel_sweep_matches_serial() {
        let mut ft = FtCircuit::new(12);
        for i in 0..11u32 {
            ft.push_cnot(QubitId(i), QubitId(i + 1)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let candidates: Vec<FabricDims> = [3u32, 4, 6, 10, 20, 40]
            .iter()
            .map(|&s| FabricDims::new(s, s).unwrap())
            .collect();

        let serial = sweep_fabrics(&qodg, &params, opts, candidates.clone());
        let parallel = sweep_fabrics_parallel(&qodg, &params, opts, candidates);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.dims, p.dims);
            match (&s.estimate, &p.estimate) {
                (Some(a), Some(b)) => assert_eq!(a.latency, b.latency),
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }
}
