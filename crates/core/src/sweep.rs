//! Fabric-size exploration: Algorithm 1's stated use case ("this value
//! can be changed to find the optimal size for the fabric which results
//! in the minimum delay").
//!
//! # The sweep engine
//!
//! A sweep estimates one program on `N` candidate fabrics. Done naively
//! that costs `N` full runs of Algorithm 1; this module amortises all
//! program-dependent work instead:
//!
//! 1. **Profile reuse** — the IIG traversal, Eq. 7's zone average and
//!    Eq. 12's uncongested-delay terms are computed once per program
//!    ([`ProgramProfile`]) and shared by every candidate.
//! 2. **Compressed coverage** — per candidate, `E[S_q]` is evaluated over
//!    the run-length-compressed coverage histogram
//!    ([`crate::coverage::CoverageHistogram`], `O(terms · s²)` instead of
//!    `O(terms · A)`).
//! 3. **Census bisection** — the routing-aware critical path depends on the
//!    fabric only through the scalar `L_CNOT^avg`, and the optimal path is
//!    piecewise-constant in it. The engine sorts the candidates'
//!    `L_CNOT^avg` values and recursively bisects: when the two endpoints
//!    of an interval select the *same* path, every interior candidate
//!    provably shares it (the longest-path envelope is convex in
//!    `L_CNOT^avg`) and only the path's length is re-accumulated, in
//!    exactly the order the full `O(|V|+|E|)` pass would have used.
//!    Typical sweeps cross a handful of path regimes, so ~`log N` full
//!    passes replace `N`.
//!
//! Every estimate produced this way is bit-identical to an independent
//! [`Estimator::estimate`] call on the same candidate (asserted per
//! workload by `tests/differential.rs`).
//!
//! With the `parallel` feature the per-candidate loop runs on scoped
//! worker threads (one per core); candidate results are identical either
//! way.

use leqa_circuit::{CriticalPath, CriticalPathScratch, Qodg, QodgNode};
use leqa_fabric::{FabricDims, Micros, PhysicalParams};

use crate::estimator::{assemble_estimate, routing_aware_critical_path, RoutingQuantities};
use crate::{Estimate, Estimator, EstimatorOptions, ProgramProfile};

/// Outcome of one fabric-size candidate.
///
/// `#[non_exhaustive]`: response-shaped — new per-candidate quantities may
/// be added without a breaking release.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepPoint {
    /// The candidate fabric.
    pub dims: FabricDims,
    /// The estimate on that fabric, or `None` when the program does not
    /// fit (fewer ULBs than logical qubits).
    pub estimate: Option<Estimate>,
}

/// Estimates a program across candidate fabrics and returns all points.
///
/// Builds the [`ProgramProfile`] once and runs the amortised engine above,
/// so an `N`-candidate sweep pays the `O(ops)` program traversals once
/// instead of `N` times. Candidates too small for the program yield
/// `estimate: None` rather than an error, so sweeps can span wide ranges.
pub fn sweep_fabrics(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: impl IntoIterator<Item = FabricDims>,
) -> Vec<SweepPoint> {
    sweep_profile(&ProgramProfile::new(qodg), params, options, candidates)
}

/// Like [`sweep_fabrics`] with a caller-owned [`ProgramProfile`] — the
/// entry point for callers sweeping the same program repeatedly (e.g.
/// across parameter sets as well as fabric sizes).
pub fn sweep_profile(
    profile: &ProgramProfile<'_>,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: impl IntoIterator<Item = FabricDims>,
) -> Vec<SweepPoint> {
    let candidates: Vec<FabricDims> = candidates.into_iter().collect();
    run_sweep(
        profile,
        params,
        options,
        candidates,
        cfg!(feature = "parallel"),
    )
}

/// Square-fabric convenience over [`sweep_profile`]: one point per side,
/// in input order — the reuse hook shared by the API's `sweep` endpoint
/// and the experiment engine's fabric axis, so both ride the same
/// census-bisection amortisation (and the same bit-identity contract).
///
/// # Errors
///
/// Returns the underlying [`FabricError`](leqa_fabric::FabricError) when a
/// side is not a valid fabric dimension (zero); sides merely too small for
/// the program still yield `estimate: None` points.
pub fn sweep_profile_squares(
    profile: &ProgramProfile<'_>,
    params: &PhysicalParams,
    options: EstimatorOptions,
    sides: impl IntoIterator<Item = u32>,
) -> Result<Vec<SweepPoint>, leqa_fabric::FabricError> {
    let candidates = sides
        .into_iter()
        .map(|side| FabricDims::new(side, side))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(sweep_profile(profile, params, options, candidates))
}

/// Like [`sweep_fabrics`], forcing the per-candidate loop onto scoped
/// worker threads (capped by the platform's available parallelism) even
/// when the `parallel` feature is off.
///
/// Estimation is CPU-bound and candidates are independent, so wide sweeps
/// — the paper's fabric-size exploration loop — scale with cores. Results
/// are identical to the serial engine's.
pub fn sweep_fabrics_parallel(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: impl IntoIterator<Item = FabricDims>,
) -> Vec<SweepPoint> {
    let candidates: Vec<FabricDims> = candidates.into_iter().collect();
    run_sweep(
        &ProgramProfile::new(qodg),
        params,
        options,
        candidates,
        true,
    )
}

/// Finds the latency-minimal square fabric among `sides`.
///
/// Returns `None` if no candidate fits the program.
///
/// # Examples
///
/// ```
/// use leqa::sweep::optimal_square_fabric;
/// use leqa::EstimatorOptions;
/// use leqa_circuit::{FtCircuit, Qodg, QubitId};
/// use leqa_fabric::PhysicalParams;
///
/// # fn main() -> Result<(), leqa_circuit::CircuitError> {
/// let mut ft = FtCircuit::new(3);
/// ft.push_cnot(QubitId(0), QubitId(1))?;
/// ft.push_cnot(QubitId(1), QubitId(2))?;
/// let qodg = Qodg::from_ft_circuit(&ft);
///
/// let best = optimal_square_fabric(
///     &qodg,
///     &PhysicalParams::dac13(),
///     EstimatorOptions::default(),
///     [2, 4, 8, 16],
/// );
/// assert!(best.is_some());
/// # Ok(())
/// # }
/// ```
pub fn optimal_square_fabric(
    qodg: &Qodg,
    params: &PhysicalParams,
    options: EstimatorOptions,
    sides: impl IntoIterator<Item = u32>,
) -> Option<(FabricDims, Estimate)> {
    let candidates = sides.into_iter().filter_map(|s| FabricDims::new(s, s).ok());
    sweep_fabrics(qodg, params, options, candidates)
        .into_iter()
        .filter_map(|p| p.estimate.map(|e| (p.dims, e)))
        .min_by(|a, b| a.1.latency.as_f64().total_cmp(&b.1.latency.as_f64()))
}

// ── Engine internals ─────────────────────────────────────────────────────

fn run_sweep(
    profile: &ProgramProfile<'_>,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: Vec<FabricDims>,
    threaded: bool,
) -> Vec<SweepPoint> {
    // Phase 1: per-candidate congestion pricing (Algorithm 1 lines 1–18,
    // with lines 1–8 prepaid by the profile).
    let quantities = if threaded {
        quantities_threaded(profile, params, options, &candidates)
    } else {
        candidates
            .iter()
            .map(|&dims| candidate_quantities(profile, params, options, dims))
            .collect()
    };

    // Phase 2: resolve the routing-aware critical path for every distinct
    // L_CNOT^avg by convex bisection. The critical-path and assembly
    // kernels are fabric-independent free functions, so no placeholder
    // fabric is involved.
    let xs: Vec<Micros> = quantities
        .iter()
        .flatten()
        .map(|q: &RoutingQuantities| q.l_cnot_avg)
        .collect();
    let censuses = CensusCache::resolve(params, &options, profile.qodg(), &xs);

    // Phase 3: assemble the estimates (Eq. 1) in candidate order.
    candidates
        .into_iter()
        .zip(quantities)
        .map(|(dims, quantities)| {
            let estimate = quantities.map(|q| {
                let critical = censuses
                    .materialize(q.l_cnot_avg)
                    .expect("phase 2 resolved every candidate's L_CNOT^avg");
                assemble_estimate(params, q, critical)
            });
            SweepPoint { dims, estimate }
        })
        .collect()
}

/// Phase 1 for one candidate; `None` when the program does not fit or the
/// options are invalid (mirrors the `.ok()` semantics sweeps always had).
fn candidate_quantities(
    profile: &ProgramProfile<'_>,
    params: &PhysicalParams,
    options: EstimatorOptions,
    dims: FabricDims,
) -> Option<RoutingQuantities> {
    Estimator::with_options(dims, params.clone(), options)
        .routing_quantities(profile)
        .ok()
}

/// Phase 1 across scoped worker threads.
fn quantities_threaded(
    profile: &ProgramProfile<'_>,
    params: &PhysicalParams,
    options: EstimatorOptions,
    candidates: &[FabricDims],
) -> Vec<Option<RoutingQuantities>> {
    crate::exec::parallel_map(candidates, |&dims| {
        candidate_quantities(profile, params, options, dims)
    })
}

/// Resolved critical paths per distinct `L_CNOT^avg` value: a handful of
/// *template* paths from full passes, plus a `(template, length)` pair per
/// value — template paths are shared until [`materialize`] clones one into
/// an [`Estimate`], so each candidate pays exactly one path copy.
///
/// [`materialize`]: CensusCache::materialize
struct CensusCache {
    /// Distinct `L_CNOT^avg` values, ascending.
    xs: Vec<f64>,
    /// `(index into templates, length at xs[i])`.
    resolved: Vec<Option<(usize, Micros)>>,
    /// Critical paths produced by full passes, one per path regime hit.
    templates: Vec<CriticalPath>,
}

impl CensusCache {
    /// Computes the routing-aware critical path for every value in `xs`.
    ///
    /// In exact arithmetic the longest-path length is a convex
    /// piecewise-linear function of `L_CNOT^avg` (each start→end path
    /// contributes the line `base + n_CNOT · x`), so if the full
    /// `O(|V|+|E|)` pass selects the same path at both endpoints of an
    /// interval, that path is optimal on the whole interval; interior
    /// values then only re-accumulate its length. Intervals whose
    /// endpoints disagree are bisected with a full pass in the middle.
    ///
    /// Floats bend the lines by ULPs, so an interior reuse is additionally
    /// guarded: if any *other* discovered path regime comes within a few
    /// ULPs of (or beats) the template's length at that value, the engine
    /// falls back to a full pass there instead of trusting the convexity
    /// argument across a near-degenerate tie. (`tests/differential.rs`
    /// pins the resulting bit-identity across the workload suite.)
    fn resolve(
        params: &PhysicalParams,
        options: &EstimatorOptions,
        qodg: &Qodg,
        xs: &[Micros],
    ) -> CensusCache {
        let mut unique: Vec<f64> = xs.iter().map(|x| x.as_f64()).collect();
        unique.sort_by(f64::total_cmp);
        unique.dedup();

        let mut cache = CensusCache {
            resolved: vec![None; unique.len()],
            xs: unique,
            templates: Vec::new(),
        };
        if cache.xs.is_empty() {
            return cache;
        }

        let mut scratch = CriticalPathScratch::new();
        if !options.update_critical_path {
            // Ablation mode: node delays ignore routing, so the pass is
            // independent of L_CNOT^avg — one pass serves every candidate.
            let cp = routing_aware_critical_path(params, options, qodg, Micros::ZERO, &mut scratch);
            let length = cp.length;
            cache.templates.push(cp);
            cache.resolved.fill(Some((0, length)));
            return cache;
        }

        let last = cache.xs.len() - 1;
        cache.full_pass(params, options, qodg, 0, &mut scratch);
        if last > 0 {
            cache.full_pass(params, options, qodg, last, &mut scratch);
        }
        cache.solve(params, options, qodg, 0, last, &mut scratch);
        cache
    }

    /// Runs the full critical-path pass at `xs[i]`, registering its path
    /// as a template (deduplicated against the previous passes' paths).
    fn full_pass(
        &mut self,
        params: &PhysicalParams,
        options: &EstimatorOptions,
        qodg: &Qodg,
        i: usize,
        scratch: &mut CriticalPathScratch,
    ) {
        let x = Micros::new(self.xs[i]);
        let cp = routing_aware_critical_path(params, options, qodg, x, scratch);
        let length = cp.length;
        let template = match self.templates.iter().position(|t| t.path == cp.path) {
            Some(t) => t,
            None => {
                self.templates.push(cp);
                self.templates.len() - 1
            }
        };
        self.resolved[i] = Some((template, length));
    }

    /// Fills `resolved[lo..=hi]` given that both endpoints already are.
    fn solve(
        &mut self,
        params: &PhysicalParams,
        options: &EstimatorOptions,
        qodg: &Qodg,
        lo: usize,
        hi: usize,
        scratch: &mut CriticalPathScratch,
    ) {
        if hi <= lo + 1 {
            return;
        }
        let (tpl_lo, _) = self.resolved[lo].expect("endpoint resolved");
        let (tpl_hi, _) = self.resolved[hi].expect("endpoint resolved");
        if tpl_lo == tpl_hi {
            // One path rules the whole interval: re-accumulate its length
            // at each interior value in DP order. Guard each reuse against
            // the other discovered regimes (see `resolve`): a rival within
            // a few ULPs means the full pass's winner is
            // rounding-determined there, so run the full pass.
            for mid in lo + 1..hi {
                let x = Micros::new(self.xs[mid]);
                let length = accumulate_along(params, qodg, &self.templates[tpl_lo], x);
                if self.rival_near(params, qodg, tpl_lo, length, x) {
                    self.full_pass(params, options, qodg, mid, scratch);
                } else {
                    self.resolved[mid] = Some((tpl_lo, length));
                }
            }
        } else {
            let mid = lo + (hi - lo) / 2;
            self.full_pass(params, options, qodg, mid, scratch);
            self.solve(params, options, qodg, lo, mid, scratch);
            self.solve(params, options, qodg, mid, hi, scratch);
        }
    }

    /// Whether any template other than `chosen` reaches (or ULP-grazes)
    /// `length` at `x`. Cheap in the common case: sweeps usually discover
    /// a single path regime, and the loop skips `chosen` itself.
    fn rival_near(
        &self,
        params: &PhysicalParams,
        qodg: &Qodg,
        chosen: usize,
        length: Micros,
        x: Micros,
    ) -> bool {
        const REL_MARGIN: f64 = 1e-12;
        self.templates.iter().enumerate().any(|(t, template)| {
            if t == chosen {
                return false;
            }
            let rival = accumulate_along(params, qodg, template, x).as_f64();
            rival >= length.as_f64() * (1.0 - REL_MARGIN)
        })
    }

    /// Builds the owned [`CriticalPath`] for a phase-1 `L_CNOT^avg` value
    /// (one path copy — the only one a candidate pays).
    fn materialize(&self, x: Micros) -> Option<CriticalPath> {
        let i = self
            .xs
            .binary_search_by(|probe| probe.total_cmp(&x.as_f64()))
            .ok()?;
        let (template, length) = self.resolved[i]?;
        let template = &self.templates[template];
        Some(CriticalPath {
            length,
            cnot_count: template.cnot_count,
            one_qubit_counts: template.one_qubit_counts,
            path: template.path.clone(),
        })
    }
}

/// Re-accumulates a known path's length at a new `L_CNOT^avg`: node delays
/// added in first-to-last order — exactly the float additions the full
/// pass performs along its argmax chain, so the length is bit-identical to
/// what the pass would return for this path.
fn accumulate_along(
    params: &PhysicalParams,
    qodg: &Qodg,
    template: &CriticalPath,
    l_cnot_avg: Micros,
) -> Micros {
    let l_one_qubit_avg = params.one_qubit_routing_latency();
    let delays = *params.gate_delays();

    let mut length = Micros::ZERO;
    for &id in &template.path {
        if let QodgNode::Op(op) = qodg.node(id) {
            let own = match op {
                leqa_circuit::FtOp::Cnot { .. } => delays.cnot() + l_cnot_avg,
                leqa_circuit::FtOp::OneQubit { kind, .. } => {
                    delays.one_qubit(kind) + l_one_qubit_avg
                }
            };
            length += own;
        }
    }
    length
}

#[cfg(test)]
mod tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    fn dense_qodg() -> Qodg {
        let mut ft = FtCircuit::new(20);
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                ft.push_cnot(q(i), q(j)).unwrap();
            }
        }
        Qodg::from_ft_circuit(&ft)
    }

    #[test]
    fn sweep_marks_undersized_fabrics() {
        let qodg = dense_qodg(); // 20 qubits
        let points = sweep_fabrics(
            &qodg,
            &PhysicalParams::dac13(),
            EstimatorOptions::default(),
            [
                FabricDims::new(4, 4).unwrap(),
                FabricDims::new(10, 10).unwrap(),
            ],
        );
        assert!(points[0].estimate.is_none()); // 16 < 20
        assert!(points[1].estimate.is_some());
    }

    #[test]
    fn optimum_is_the_sweep_minimum() {
        let qodg = dense_qodg();
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let sides = [5u32, 8, 15, 30, 60];
        let (best_dims, best) =
            optimal_square_fabric(&qodg, &params, opts, sides).expect("some fit");
        for p in sweep_fabrics(
            &qodg,
            &params,
            opts,
            sides.iter().filter_map(|&s| FabricDims::new(s, s).ok()),
        ) {
            if let Some(e) = p.estimate {
                assert!(best.latency.as_f64() <= e.latency.as_f64() + 1e-9);
            }
        }
        assert!(best_dims.area() >= 25);
    }

    #[test]
    fn squares_hook_matches_explicit_candidates() {
        let qodg = dense_qodg();
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let profile = ProgramProfile::new(&qodg);
        let from_sides = sweep_profile_squares(&profile, &params, opts, [4u32, 10, 20]).unwrap();
        let explicit = sweep_profile(
            &profile,
            &params,
            opts,
            [4u32, 10, 20].map(|s| FabricDims::new(s, s).unwrap()),
        );
        assert_eq!(from_sides.len(), explicit.len());
        for (a, b) in from_sides.iter().zip(&explicit) {
            assert_eq!(a.dims, b.dims);
            match (&a.estimate, &b.estimate) {
                (Some(x), Some(y)) => assert_eq!(x.latency, y.latency),
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
        assert!(sweep_profile_squares(&profile, &params, opts, [0u32]).is_err());
    }

    #[test]
    fn no_fit_returns_none() {
        let qodg = dense_qodg();
        assert!(optimal_square_fabric(
            &qodg,
            &PhysicalParams::dac13(),
            EstimatorOptions::default(),
            [2u32, 3, 4],
        )
        .is_none());
    }

    #[test]
    fn sweep_is_bit_identical_to_independent_estimates() {
        // The engine's contract: profile reuse, compressed coverage and
        // census bisection change the cost, never the bits.
        let qodg = dense_qodg();
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let candidates: Vec<FabricDims> = (5..=60)
            .step_by(5)
            .map(|s| FabricDims::new(s, s).unwrap())
            .collect();
        let points = sweep_fabrics(&qodg, &params, opts, candidates.clone());
        for (point, dims) in points.iter().zip(&candidates) {
            let direct = Estimator::with_options(*dims, params.clone(), opts)
                .estimate(&qodg)
                .ok();
            match (&point.estimate, &direct) {
                (Some(sweep), Some(direct)) => {
                    assert_eq!(sweep.latency, direct.latency, "{dims:?}");
                    assert_eq!(sweep.l_cnot_avg, direct.l_cnot_avg, "{dims:?}");
                    assert_eq!(sweep.critical, direct.critical, "{dims:?}");
                    assert_eq!(sweep.esq, direct.esq, "{dims:?}");
                }
                (None, None) => {}
                other => panic!("{dims:?}: fit mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_without_critical_path_update_matches_too() {
        let qodg = dense_qodg();
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions {
            update_critical_path: false,
            ..Default::default()
        };
        for point in sweep_fabrics(
            &qodg,
            &params,
            opts,
            [
                FabricDims::new(5, 5).unwrap(),
                FabricDims::new(40, 40).unwrap(),
            ],
        ) {
            let direct = Estimator::with_options(point.dims, params.clone(), opts)
                .estimate(&qodg)
                .unwrap();
            let sweep = point.estimate.expect("fits");
            assert_eq!(sweep.latency, direct.latency);
            assert_eq!(sweep.critical, direct.critical);
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use leqa_circuit::{FtCircuit, QubitId};

    #[test]
    fn parallel_sweep_matches_serial() {
        let mut ft = FtCircuit::new(12);
        for i in 0..11u32 {
            ft.push_cnot(QubitId(i), QubitId(i + 1)).unwrap();
        }
        let qodg = Qodg::from_ft_circuit(&ft);
        let params = PhysicalParams::dac13();
        let opts = EstimatorOptions::default();
        let candidates: Vec<FabricDims> = [3u32, 4, 6, 10, 20, 40]
            .iter()
            .map(|&s| FabricDims::new(s, s).unwrap())
            .collect();

        let serial = sweep_fabrics(&qodg, &params, opts, candidates.clone());
        let parallel = sweep_fabrics_parallel(&qodg, &params, opts, candidates);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.dims, p.dims);
            match (&s.estimate, &p.estimate) {
                (Some(a), Some(b)) => assert_eq!(a.latency, b.latency),
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }
}
