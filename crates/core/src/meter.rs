//! A counting global allocator for bounded-memory regression tests.
//!
//! The streaming pipeline's whole point is a peak-RSS bound, and the only
//! way to *regression-test* a bound is to measure it from inside the
//! process: external RSS numbers are noisy (allocator slack, test harness
//! overhead) and platform-dependent. [`CountingAlloc`] wraps the system
//! allocator with two atomic counters — live bytes and the high-water
//! mark — so a test binary can install it with `#[global_allocator]` and
//! assert `peak_bytes()` against a budget (see
//! `crates/core/tests/bounded_memory.rs`).
//!
//! The counters track *requested* bytes, not allocator-internal overhead;
//! that is exactly what the streaming-vs-materialized comparison needs,
//! since both paths pay the same allocator slack factor.

// Implementing `GlobalAlloc` is inherently unsafe; this is the same
// documented carve-out as `pool` (the crate is `deny`, not `forbid`).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-backed allocator that tracks live bytes and their peak.
///
/// All counter updates are relaxed atomics: the peak is maintained with a
/// `fetch_max` loop, so concurrent allocations can under-report the peak
/// by at most the bytes in flight — irrelevant at the megabyte budgets
/// the regression tests assert.
///
/// # Examples
///
/// Install in a test binary and measure a workload:
///
/// ```text
/// #[global_allocator]
/// static ALLOC: leqa::meter::CountingAlloc = leqa::meter::CountingAlloc::new();
///
/// let before = ALLOC.live_bytes();
/// ALLOC.reset_peak();
/// run_workload();
/// let peak = ALLOC.peak_bytes() - before;
/// assert!(peak < BUDGET);
/// ```
#[derive(Debug)]
pub struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A zeroed counter set (const, as `#[global_allocator]` requires).
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`live_bytes`](Self::live_bytes) since the last
    /// [`reset_peak`](Self::reset_peak) (or process start).
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the peak tracking from the current live count, so a test
    /// can scope the measurement to one workload.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counters never touch the pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            self.sub(layout.size());
            self.add(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (that would meter the
    // whole test binary); the accounting itself is what these pin down.
    #[test]
    fn counters_track_alloc_and_free() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        // SAFETY: layout is non-zero-sized; the pointer is freed below
        // with the same layout.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.live_bytes(), 1024);
            assert_eq!(a.peak_bytes(), 1024);
            a.dealloc(p, layout);
        }
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.peak_bytes(), 1024, "peak survives the free");
        a.reset_peak();
        assert_eq!(a.peak_bytes(), 0);
    }

    #[test]
    fn realloc_retargets_the_live_count() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(256, 8).unwrap();
        // SAFETY: grow then free with the final size's layout.
        unsafe {
            let p = a.alloc(layout);
            let p2 = a.realloc(p, layout, 4096);
            assert!(!p2.is_null());
            assert_eq!(a.live_bytes(), 4096);
            assert!(a.peak_bytes() >= 4096);
            a.dealloc(p2, Layout::from_size_align(4096, 8).unwrap());
        }
        assert_eq!(a.live_bytes(), 0);
    }
}
