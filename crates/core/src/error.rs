//! Error type for the estimator.

use std::error::Error;
use std::fmt;

/// Errors produced by [`Estimator::estimate`](crate::Estimator::estimate).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EstimateError {
    /// The circuit uses more logical qubits than the fabric has ULBs, so no
    /// placement exists and neither does a meaningful estimate.
    FabricTooSmall {
        /// Logical qubits in the program.
        qubits: u64,
        /// ULBs on the fabric.
        area: u64,
    },
    /// An estimator option was out of its valid range.
    InvalidOption {
        /// Name of the offending option.
        name: &'static str,
    },
    /// The estimator's [`FabricMap`](leqa_fabric::FabricMap) describes a
    /// different fabric than the estimator's dimensions.
    FabricMapMismatch {
        /// Fabric width × height the estimator was configured with.
        dims: (u32, u32),
        /// Fabric width × height the map describes.
        map_dims: (u32, u32),
    },
    /// A [`GateSource`](crate::stream::GateSource) yielded an op touching a
    /// qubit outside its declared register (or a degenerate self-loop),
    /// so the stream does not describe a well-formed program.
    InvalidStream {
        /// The offending qubit index.
        qubit: u32,
        /// The qubit count the source declared.
        num_qubits: u32,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::FabricTooSmall { qubits, area } => write!(
                f,
                "{qubits} logical qubits cannot be placed on a {area}-ulb fabric"
            ),
            EstimateError::InvalidOption { name } => {
                write!(f, "estimator option `{name}` is invalid")
            }
            EstimateError::FabricMapMismatch { dims, map_dims } => write!(
                f,
                "fabric map describes a {}x{} fabric but the estimator is {}x{}",
                map_dims.0, map_dims.1, dims.0, dims.1
            ),
            EstimateError::InvalidStream { qubit, num_qubits } => write!(
                f,
                "gate stream op on qubit {qubit} is invalid for the declared \
                 {num_qubits}-qubit register"
            ),
        }
    }
}

impl Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            EstimateError::FabricTooSmall {
                qubits: 100,
                area: 16
            }
            .to_string(),
            "100 logical qubits cannot be placed on a 16-ulb fabric"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EstimateError>();
    }
}
