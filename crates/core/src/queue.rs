//! The M/M/1 channel-congestion model (§3.1, Eqs. 8–11, Fig. 5).
//!
//! A routing channel is *uncongested* while at most `N_c` qubits inhabit it;
//! such qubits pass with the minimum delay `d_uncong`. Beyond `N_c` the
//! qubits pipeline through the channel, modelled as an M/M/1/∞ queue with
//! Poisson arrivals (rate `λ`) and exponential service (rate
//! `µ = N_c / d_uncong`). Setting the average queue length to `q` and
//! applying Little's formula yields the congested per-qubit delay
//! `W_avg = (1 + q) · d_uncong / N_c` (Eq. 11), giving the piecewise
//! routing-delay law `d_q` of Eq. 8.

use leqa_fabric::Micros;

/// `d_q` (Eq. 8): the average routing latency of a qubit in an average-size
/// presence zone when the local channel population is `q`.
///
/// # Examples
///
/// ```
/// use leqa::queue::routing_delay;
/// use leqa_fabric::Micros;
///
/// let d = Micros::new(1000.0);
/// // Below capacity: the uncongested latency.
/// assert_eq!(routing_delay(3, 5, d), d);
/// assert_eq!(routing_delay(5, 5, d), d);
/// // Above capacity: (1 + q)/N_c times it.
/// assert_eq!(routing_delay(9, 5, d), Micros::new(2000.0));
/// ```
pub fn routing_delay(q: u64, channel_capacity: u32, d_uncong: Micros) -> Micros {
    if q <= channel_capacity as u64 {
        d_uncong
    } else {
        d_uncong * ((1 + q) as f64 / channel_capacity as f64)
    }
}

/// [`routing_delay`] with a fractional capacity: the *mean* usable
/// capacity of a defective/heterogeneous fabric (dead channels count as
/// zero; see [`FabricMap::mean_channel_capacity`]), which is generally
/// not an integer. Identical to [`routing_delay`] at integral capacities.
///
/// [`FabricMap::mean_channel_capacity`]: leqa_fabric::FabricMap::mean_channel_capacity
pub fn routing_delay_frac(q: u64, channel_capacity: f64, d_uncong: Micros) -> Micros {
    if q as f64 <= channel_capacity {
        d_uncong
    } else {
        d_uncong * ((1 + q) as f64 / channel_capacity)
    }
}

/// The arrival rate `λ` implied by an average queue length of `q`
/// (Eq. 10): `λ = q·N_c / ((1 + q)·d_uncong)`.
pub fn arrival_rate(q: u64, channel_capacity: u32, d_uncong: Micros) -> f64 {
    let q = q as f64;
    q * channel_capacity as f64 / ((1.0 + q) * d_uncong.as_f64())
}

/// The service rate `µ = N_c / d_uncong` (§3.1).
pub fn service_rate(channel_capacity: u32, d_uncong: Micros) -> f64 {
    channel_capacity as f64 / d_uncong.as_f64()
}

/// Average waiting time from Little's formula (Eq. 11):
/// `W_avg = q / λ = (1 + q)·d_uncong / N_c`.
pub fn average_wait(q: u64, channel_capacity: u32, d_uncong: Micros) -> Micros {
    d_uncong * ((1 + q) as f64 / channel_capacity as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const D: Micros = Micros::new(800.0);

    #[test]
    fn uncongested_region_is_flat() {
        for q in 0..=5 {
            assert_eq!(routing_delay(q, 5, D), D);
        }
    }

    #[test]
    fn frac_matches_integer_at_integral_capacity() {
        for q in 0..20u64 {
            for nc in 1..8u32 {
                assert_eq!(routing_delay_frac(q, nc as f64, D), routing_delay(q, nc, D));
            }
        }
    }

    #[test]
    fn frac_capacity_interpolates() {
        // Between N_c = 4 and N_c = 5 the congested delay lies between the
        // two integer laws.
        let q = 9;
        let lo = routing_delay(q, 4, D).as_f64();
        let hi = routing_delay(q, 5, D).as_f64();
        let mid = routing_delay_frac(q, 4.5, D).as_f64();
        assert!(hi < mid && mid < lo, "{hi} < {mid} < {lo}");
    }

    #[test]
    fn congested_region_grows_linearly() {
        let d6 = routing_delay(6, 5, D).as_f64();
        let d7 = routing_delay(7, 5, D).as_f64();
        let d8 = routing_delay(8, 5, D).as_f64();
        assert!((d7 - d6 - (d8 - d7)).abs() < 1e-9, "constant slope");
        assert!((d6 - D.as_f64() * 7.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn queue_length_consistency_with_mm1() {
        // Eq. 9: l = λ/(µ−λ). Plugging Eq. 10's λ back must recover q.
        for q in 1..50u64 {
            let lambda = arrival_rate(q, 5, D);
            let mu = service_rate(5, D);
            let l = lambda / (mu - lambda);
            assert!((l - q as f64).abs() < 1e-9, "q={q}: l={l}");
        }
    }

    #[test]
    fn littles_formula_consistency() {
        // l = λ·W  ⇒  W = q/λ, which must equal Eq. 11.
        for q in 1..50u64 {
            let lambda = arrival_rate(q, 5, D);
            let w = q as f64 / lambda;
            assert!((w - average_wait(q, 5, D).as_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn stability_lambda_below_mu() {
        // The implied arrival rate must stay below the service rate for any
        // finite queue (M/M/1 stability).
        for q in 0..1000u64 {
            assert!(arrival_rate(q, 5, D) < service_rate(5, D));
        }
    }

    proptest! {
        #[test]
        fn delay_is_monotone_in_population(
            q in 0u64..200, nc in 1u32..20, d in 1.0f64..1e5
        ) {
            let d = Micros::new(d);
            let now = routing_delay(q, nc, d).as_f64();
            let next = routing_delay(q + 1, nc, d).as_f64();
            prop_assert!(next + 1e-12 >= now);
        }

        #[test]
        fn delay_never_below_uncongested(
            q in 0u64..200, nc in 1u32..20, d in 1.0f64..1e5
        ) {
            let d = Micros::new(d);
            // (1+q)/N_c ≥ 1 whenever q > N_c, so the congested branch only
            // ever raises the delay.
            prop_assert!(routing_delay(q, nc, d).as_f64() + 1e-12 >= d.as_f64());
        }
    }
}
