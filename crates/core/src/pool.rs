//! A persistent worker pool with a shared injector queue.
//!
//! Every thread-parallel path in the workspace (the sweep engine's
//! per-candidate loop, `Session::batch`'s fan-out, the bench suite
//! runner) used to spawn fresh scoped threads per call. Under service
//! traffic that pays thread startup on every request; this module keeps
//! one process-wide set of workers alive instead ([`Pool::global`],
//! sized to the platform's available parallelism) and hands them work
//! through a shared FIFO injector queue.
//!
//! # Execution model
//!
//! [`Pool::map`] is the only entry point: it maps a closure over a
//! borrowed slice, in order, and returns the results — semantically
//! identical to `items.iter().map(f).collect()`. Internally the call
//! enqueues up to `workers` *helper* jobs, each of which drains items
//! from a shared atomic cursor; the **submitting thread always
//! participates** in the drain, so a call completes even when every
//! worker is busy with other requests (and nested `map` calls cannot
//! deadlock). Helper jobs that no worker picks up by the time the
//! submitter finishes are reclaimed unrun. Item order, and therefore
//! results, never depend on scheduling — parallelism changes wall-clock
//! only.
//!
//! # Why there is `unsafe` here (and nowhere else)
//!
//! Helper jobs borrow the caller's slice and closure, but live on
//! persistent threads the borrow checker cannot tie to the caller's
//! stack frame — the same problem `rayon` and `crossbeam` solve, and
//! like them this module erases the borrow lifetime and re-establishes
//! safety with a completion latch: [`Pool::map`] does not return until
//! every helper job either ran to completion or was reclaimed before
//! running, so no erased borrow can outlive the frame it points into.
//! The erasure is one documented `transmute`; the rest of the crate
//! remains `#![deny(unsafe_code)]`-clean.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased helper job (see the module docs for the latch
/// discipline that makes the erasure sound).
type ErasedJob = Box<dyn FnOnce() + Send + 'static>;

/// One enqueued helper job. `claimed` is set by whoever takes
/// responsibility for the slot — a worker about to run it, or the
/// submitter reclaiming it unrun — so exactly one side runs the job and
/// exactly one side counts the latch down.
struct JobSlot {
    claimed: AtomicBool,
    job: Mutex<Option<ErasedJob>>,
    latch: Arc<Latch>,
}

impl JobSlot {
    /// Runs (worker side) or skips (already claimed) the slot.
    fn run(&self) {
        if self.claimed.swap(true, Ordering::AcqRel) {
            return; // the submitter reclaimed it and counted down
        }
        let job = self.job.lock().expect("no poisoning").take();
        if let Some(job) = job {
            job();
        }
        self.latch.count_down();
    }
}

/// Counts outstanding helper jobs of one `map` call down to zero.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Latch {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("no poisoning");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("no poisoning");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("no poisoning");
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Arc<JobSlot>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A persistent worker pool (see the [module docs](self)).
///
/// Most callers want [`Pool::global`]; dedicated pools
/// ([`Pool::with_workers`]) exist for sizing tests and shut their
/// workers down on drop.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// The process-wide pool, spawned on first use with one worker per
    /// core (`std::thread::available_parallelism`). Every
    /// [`parallel_map`](crate::exec::parallel_map) call shares it, so
    /// thread startup is paid once per process instead of once per
    /// request.
    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            Pool::with_workers(workers)
        })
    }

    /// A dedicated pool with exactly `workers` worker threads (0 is
    /// allowed: every `map` then runs entirely on the submitting
    /// thread). Workers are joined when the pool is dropped.
    pub fn with_workers(workers: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("leqa-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            handles,
        }
    }

    /// The number of worker threads (the submitting thread participates
    /// on top of these).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Helper jobs currently sitting in the injector queue (claimed
    /// slots a `map` call already reclaimed still count until a worker
    /// pops them). A quiesced pool reports 0.
    #[must_use]
    pub fn queued_jobs(&self) -> usize {
        self.shared.queue.lock().expect("no poisoning").len()
    }

    /// Drains the injector queue on the calling thread: pops every
    /// queued helper slot and runs it (already-reclaimed slots are
    /// no-ops). Service daemons call this on graceful shutdown so the
    /// pool is quiescent before the process reports a clean exit; since
    /// [`map`](Self::map) is synchronous, a drain after all submitters
    /// returned leaves nothing behind.
    pub fn drain(&self) {
        loop {
            let slot = self.shared.queue.lock().expect("no poisoning").pop_front();
            match slot {
                Some(slot) => slot.run(),
                None => return,
            }
        }
    }

    /// Submits one fire-and-forget job to the pool. Unlike
    /// [`map`](Self::map) the call returns immediately; the job runs on
    /// whichever worker pops it (or inline on the submitting thread when
    /// the pool has no workers). Completion is the job's own business —
    /// pipelined services hand a channel sender into the closure and
    /// treat the send as the completion signal. Jobs still queued at
    /// [`drain`](Self::drain) time are run by the draining thread, so
    /// the graceful-shutdown discipline covers submitted jobs too.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.workers == 0 {
            job();
            return;
        }
        let slot = Arc::new(JobSlot {
            claimed: AtomicBool::new(false),
            job: Mutex::new(Some(Box::new(job))),
            latch: Arc::new(Latch::new(1)),
        });
        self.shared
            .queue
            .lock()
            .expect("no poisoning")
            .push_back(slot);
        self.shared.available.notify_one();
    }

    /// Maps `f` over `items` on the pool, preserving order. Results are
    /// identical to `items.iter().map(f).collect()` — only wall-clock
    /// changes. The submitting thread participates, so the call
    /// completes (and nested calls cannot deadlock) even when every
    /// worker is busy. A panic in `f` is re-raised on the submitting
    /// thread after all in-flight items finish.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if self.workers == 0 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }

        let results: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        // The drain loop every participant runs: claim the next item
        // index, compute, store. Captures only shared references, so it
        // is `Copy` — each helper job boxes its own copy.
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                Ok(value) => *results[i].lock().expect("no poisoning") = Some(value),
                Err(payload) => {
                    let mut slot = panic_slot.lock().expect("no poisoning");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        };

        let helpers = self.workers.min(items.len() - 1);
        let latch = Arc::new(Latch::new(helpers));
        let mut slots: Vec<Arc<JobSlot>> = Vec::with_capacity(helpers);
        {
            let mut queue = self.shared.queue.lock().expect("no poisoning");
            for _ in 0..helpers {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(work);
                // SAFETY: the erased job borrows `items`, `f` and the
                // locals above, all of which outlive this function body.
                // The latch below guarantees `map` does not return until
                // every slot was either run to completion by a worker or
                // reclaimed (and its job dropped unrun) by this thread,
                // so the borrows never escape the frame. Lifetime is the
                // only thing the transmute changes.
                #[allow(unsafe_code)]
                let job: ErasedJob =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, ErasedJob>(job) };
                let slot = Arc::new(JobSlot {
                    claimed: AtomicBool::new(false),
                    job: Mutex::new(Some(job)),
                    latch: Arc::clone(&latch),
                });
                slots.push(Arc::clone(&slot));
                queue.push_back(slot);
            }
        }
        self.shared.available.notify_all();

        // Participate: the submitting thread drains items alongside the
        // workers (with the original, un-erased closure).
        work();

        // Reclaim helper jobs no worker picked up — their items are
        // already done, running them would be a no-op loop iteration.
        for slot in &slots {
            if !slot.claimed.swap(true, Ordering::AcqRel) {
                drop(slot.job.lock().expect("no poisoning").take());
                slot.latch.count_down();
            }
        }
        latch.wait();

        if let Some(payload) = panic_slot.lock().expect("no poisoning").take() {
            resume_unwind(payload);
        }

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("no poisoning")
                    .expect("every item was drained")
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: pop and run jobs until shutdown (draining any queued
/// jobs first, so in-flight `map` calls complete during a pool drop).
fn worker_loop(shared: &Shared) {
    loop {
        let slot = {
            let mut queue = shared.queue.lock().expect("no poisoning");
            loop {
                if let Some(slot) = queue.pop_front() {
                    break slot;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).expect("no poisoning");
            }
        };
        slot.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_values() {
        let pool = Pool::with_workers(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.map(&items, |&x| x * 3 + 1);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = Pool::with_workers(2);
        assert!(pool.map(&[] as &[u64], |&x| x).is_empty());
        assert_eq!(pool.map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_worker_pool_runs_on_the_submitter() {
        let pool = Pool::with_workers(0);
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(
            pool.map(&items, |&x| x * x),
            items.iter().map(|x| x * x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn global_pool_is_reusable_across_calls() {
        let pool = Pool::global();
        for round in 0..5u64 {
            let items: Vec<u64> = (0..40).collect();
            let out = pool.map(&items, |&x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_maps_complete() {
        let pool = Pool::with_workers(2);
        let outer: Vec<u64> = (0..6).collect();
        let out = pool.map(&outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            Pool::global()
                .map(&inner, |&y| x * 10 + y)
                .iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = outer
            .iter()
            .map(|&x| (0..8).map(|y| x * 10 + y).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Pool::with_workers(3);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    let items: Vec<u64> = (0..100).collect();
                    let out = pool.map(&items, |&x| x ^ t);
                    assert_eq!(out, items.iter().map(|x| x ^ t).collect::<Vec<_>>());
                });
            }
        });
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = Pool::with_workers(2);
        let items: Vec<u64> = (0..32).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |&x| {
                assert!(x != 17, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The pool survives a panicked map.
        assert_eq!(pool.map(&[1u64, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn drain_leaves_the_queue_empty_and_the_pool_serviceable() {
        let pool = Pool::with_workers(2);
        for _ in 0..8 {
            let items: Vec<u64> = (0..64).collect();
            let _ = pool.map(&items, |&x| x + 1);
        }
        pool.drain();
        assert_eq!(pool.queued_jobs(), 0);
        // The pool still serves after a drain.
        assert_eq!(pool.map(&[1u64, 2], |&x| x * 2), vec![2, 4]);
        pool.drain();
        assert_eq!(pool.queued_jobs(), 0);
    }

    #[test]
    fn submit_runs_jobs_and_signals_through_channels() {
        let pool = Pool::with_workers(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i * i).expect("receiver alive"));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn submit_on_a_zero_worker_pool_runs_inline() {
        let pool = Pool::with_workers(0);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        pool.submit(move || flag.store(true, Ordering::Release));
        assert!(ran.load(Ordering::Acquire));
    }

    #[test]
    fn drain_runs_submitted_jobs_left_in_the_queue() {
        // A dropped pool's workers may exit before popping everything;
        // use a zero-contention setup: enqueue against a 1-worker pool
        // that is blocked, then drain from this thread.
        let busy = Pool::with_workers(1);
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        busy.submit(move || {
            started_tx.send(()).expect("test thread alive");
            let _ = gate_rx.recv();
        });
        // Wait until the lone worker is parked inside the gate job, so
        // the next submit can only be popped by `drain` below.
        started_rx.recv().expect("gate job started");
        let (tx, rx) = std::sync::mpsc::channel();
        busy.submit(move || tx.send(7u64).expect("receiver alive"));
        // The lone worker is parked on the gate; drain from here runs
        // the second job on this thread.
        busy.drain();
        assert_eq!(rx.recv().expect("job ran"), 7);
        gate_tx.send(()).expect("worker alive");
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = Pool::with_workers(2);
        let items: Vec<u64> = (0..64).collect();
        let _ = pool.map(&items, |&x| x);
        drop(pool); // must not hang
    }
}
