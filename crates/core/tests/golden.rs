//! A fully hand-computed golden scenario pinning Eqs. 2–16 numerically.
//!
//! Setup: a 3×3 fabric with the DAC'13 physical parameters and a triangle
//! circuit — one CNOT on each pair of three qubits. Every intermediate
//! below was computed by hand (see the inline derivations), so this test
//! fails if any equation's implementation drifts.

use leqa::coverage::CoverageTable;
use leqa::{Estimator, EstimatorOptions, ZoneRounding};
use leqa_circuit::{FtCircuit, Qodg, QubitId};
use leqa_fabric::{FabricDims, PhysicalParams};

fn triangle() -> Qodg {
    let q = QubitId;
    let mut ft = FtCircuit::new(3);
    ft.push_cnot(q(0), q(1)).unwrap();
    ft.push_cnot(q(1), q(2)).unwrap();
    ft.push_cnot(q(0), q(2)).unwrap();
    Qodg::from_ft_circuit(&ft)
}

const TOL: f64 = 1e-9;

#[test]
fn presence_zones_eq6_eq7() {
    // Every qubit has M = 2 partners → B_i = 3 → B = 3.
    let iig = leqa_circuit::Iig::from_qodg(&triangle());
    for i in 0..3 {
        assert_eq!(iig.degree(QubitId(i)), 2);
        assert_eq!(iig.strength(QubitId(i)), 2);
    }
    assert!((leqa::presence::average_zone_area(&iig).unwrap() - 3.0).abs() < TOL);
}

#[test]
fn hamiltonian_path_eq15_and_duncong_eq16() {
    // E[l_ham] = √3 · (0.713·√3 + 0.641) · (2−1)/2 = 1.624622283825825.
    let e = leqa::tsp::expected_hamiltonian_path(2);
    assert!((e - 1.624_622_283_825_825).abs() < TOL, "E[l_ham] = {e}");
    // d_uncong = E[l_ham] / (v·M) = E/(0.001·2) = 812.3111419129125 µs.
    let d = leqa::tsp::uncongested_delay_for(2, 0.001);
    assert!((d.as_f64() - 812.311_141_912_912_5).abs() < 1e-6, "d = {d}");
}

#[test]
fn coverage_eq5_on_3x3_with_side_2() {
    // Zone side ⌈√3⌉ = 2 on a 3×3 fabric: 4 placements.
    // P(corner) = 1/4, P(edge-mid) = 1/2, P(center) = 1.
    let dims = FabricDims::new(3, 3).unwrap();
    let table = CoverageTable::new(dims, 3.0, ZoneRounding::Ceil);
    assert_eq!(table.zone_side(), 2);
    assert!((table.p(1, 1) - 0.25).abs() < TOL);
    assert!((table.p(3, 3) - 0.25).abs() < TOL);
    assert!((table.p(2, 1) - 0.5).abs() < TOL);
    assert!((table.p(1, 2) - 0.5).abs() < TOL);
    assert!((table.p(2, 2) - 1.0).abs() < TOL);
}

#[test]
fn expected_surfaces_eq4_by_hand() {
    // With Q = 3 zones on the table above:
    // E[S_1] = 3·(4·0.25·0.75² + 4·0.5·0.5² + 0) = 3.1875
    // E[S_2] = 3·(4·0.25²·0.75 + 4·0.5²·0.5 + 0) = 2.0625
    // E[S_3] = 1·(4·0.25³ + 4·0.5³ + 1)          = 1.5625
    // and E[S_0] = 2.1875 closes Eq. 3: Σ = 9 = A.
    let dims = FabricDims::new(3, 3).unwrap();
    let table = CoverageTable::new(dims, 3.0, ZoneRounding::Ceil);
    let esq = table.expected_surfaces(3, 20);
    assert_eq!(esq.len(), 3);
    assert!((esq[0] - 3.1875).abs() < TOL, "E[S_1] = {}", esq[0]);
    assert!((esq[1] - 2.0625).abs() < TOL, "E[S_2] = {}", esq[1]);
    assert!((esq[2] - 1.5625).abs() < TOL, "E[S_3] = {}", esq[2]);
    let covered: f64 = esq.iter().sum();
    assert!((covered + 2.1875 - 9.0).abs() < TOL);
}

#[test]
fn end_to_end_eq1_eq2_by_hand() {
    // All coverage counts q ∈ {1,2,3} are below N_c = 5, so every d_q =
    // d_uncong and Eq. 2 collapses to L_CNOT = d_uncong = 812.311… µs.
    // The three CNOTs form one serial chain (each pair shares a wire), so
    // D = 3 · (d_CNOT + L_CNOT) = 3 · (4930 + 812.3111419129125)
    //   = 17226.933425738738 µs.
    let estimator = Estimator::with_options(
        FabricDims::new(3, 3).unwrap(),
        PhysicalParams::dac13(),
        EstimatorOptions::default(),
    );
    let est = estimator.estimate(&triangle()).unwrap();
    assert!(
        (est.l_cnot_avg.as_f64() - 812.311_141_912_912_5).abs() < 1e-6,
        "L_CNOT = {}",
        est.l_cnot_avg
    );
    assert!(
        (est.latency.as_f64() - 17_226.933_425_738_738).abs() < 1e-5,
        "D = {}",
        est.latency
    );
    assert_eq!(est.critical.cnot_count, 3);
    assert_eq!(est.zone_side, 2);
    assert!((est.avg_zone_area - 3.0).abs() < TOL);
}

#[test]
fn congestion_branch_engages_on_a_unit_capacity_fabric() {
    // Same scenario but N_c = 1: coverage counts q = 2 and q = 3 are now
    // congested, d_2 = 3·d_uncong, d_3 = 4·d_uncong (Eq. 8), so
    // L_CNOT = (E1·1 + E2·3 + E3·4)·d_uncong / (E1+E2+E3)
    //        = (3.1875 + 6.1875 + 6.25)/6.8125 · d_uncong.
    let params = PhysicalParams::dac13()
        .to_builder()
        .channel_capacity(1)
        .build()
        .unwrap();
    let estimator = Estimator::new(FabricDims::new(3, 3).unwrap(), params);
    let est = estimator.estimate(&triangle()).unwrap();
    let d_uncong = 812.311_141_912_912_5;
    let expected = (3.1875 + 3.0 * 2.0625 + 4.0 * 1.5625) / 6.8125 * d_uncong;
    assert!(
        (est.l_cnot_avg.as_f64() - expected).abs() < 1e-6,
        "L_CNOT = {} vs hand {expected}",
        est.l_cnot_avg
    );
}
