//! Differential suite: the streaming profile builder and estimator must be
//! *bit-identical* to the materialized pipeline on every workload both
//! paths can run, for every chunk size.
//!
//! This is the load-bearing guarantee of `leqa::stream`: the `leqa-api`
//! session silently switches to the streaming path above its op-count
//! threshold, so any divergence — even one ULP in a float — would make an
//! estimate depend on *how* it was computed. Equality here is `==` on
//! `f64`s, never a tolerance.

use leqa::stream::{FnSource, GateSource, StreamingProfileBuilder};
use leqa::{Estimate, Estimator, ProfileData};
use leqa_circuit::{decompose::lower_to_ft, FtCircuit, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::{circuit_by_name, stream_by_name, SUITE};
use proptest::prelude::*;

/// The chunk sizes the issue pins: degenerate (every pair its own chunk),
/// prime and misaligned, and larger than most test streams.
const CHUNK_SIZES: [usize; 3] = [1, 7, 4096];

fn ft_by_name(name: &str) -> FtCircuit {
    let circuit = circuit_by_name(name).unwrap_or_else(|| panic!("workload {name}"));
    lower_to_ft(&circuit).expect("suite circuits lower")
}

fn estimator() -> Estimator {
    Estimator::new(FabricDims::dac13(), PhysicalParams::dac13())
}

/// Field-by-field bitwise equality, minus `critical.path` (the streaming
/// pass cannot name QODG nodes; everything the response layer serializes
/// is compared).
fn assert_estimates_identical(streamed: &Estimate, materialized: &Estimate, label: &str) {
    assert_eq!(streamed.latency, materialized.latency, "{label}: latency");
    assert_eq!(
        streamed.l_cnot_avg, materialized.l_cnot_avg,
        "{label}: l_cnot_avg"
    );
    assert_eq!(
        streamed.l_one_qubit_avg, materialized.l_one_qubit_avg,
        "{label}: l_one_qubit_avg"
    );
    assert_eq!(
        streamed.d_uncong, materialized.d_uncong,
        "{label}: d_uncong"
    );
    assert_eq!(
        streamed.avg_zone_area, materialized.avg_zone_area,
        "{label}: avg_zone_area"
    );
    assert_eq!(
        streamed.zone_side, materialized.zone_side,
        "{label}: zone_side"
    );
    assert_eq!(streamed.esq, materialized.esq, "{label}: esq");
    assert_eq!(
        streamed.qubit_count, materialized.qubit_count,
        "{label}: qubit_count"
    );
    assert_eq!(
        streamed.critical.length, materialized.critical.length,
        "{label}: critical.length"
    );
    assert_eq!(
        streamed.critical.cnot_count, materialized.critical.cnot_count,
        "{label}: critical.cnot_count"
    );
    assert_eq!(
        streamed.critical.one_qubit_counts, materialized.critical.one_qubit_counts,
        "{label}: critical.one_qubit_counts"
    );
    assert!(
        streamed.critical.path.is_empty(),
        "{label}: streaming path is nameless"
    );
}

/// Streams `ft` through the builder at `chunk` pairs and checks the
/// profile and estimate against the materialized pipeline.
fn check_workload(ft: &FtCircuit, name: &str) {
    let qodg = Qodg::from_ft_circuit(ft);
    let materialized_profile = ProfileData::new(&qodg);
    let est = estimator();
    let materialized = est.estimate(&qodg).expect("suite fits the dac13 fabric");

    for chunk in CHUNK_SIZES {
        let mut builder = StreamingProfileBuilder::with_chunk_pairs(ft.num_qubits(), chunk);
        for op in GateSource::gates(ft) {
            builder.push(op);
        }
        let profile = builder.finish().expect("well-formed stream");
        assert_eq!(
            profile, materialized_profile,
            "{name} chunk={chunk}: ProfileData must be bit-identical"
        );
    }

    let streamed = est.estimate_stream(ft).expect("well-formed stream");
    assert_estimates_identical(&streamed, &materialized, name);
}

#[test]
fn the_whole_suite_is_bit_identical_under_streaming() {
    for bench in &SUITE {
        let ft = lower_to_ft(&bench.circuit()).expect("suite circuits lower");
        check_workload(&ft, bench.name);
    }
}

#[test]
fn parametric_workloads_are_bit_identical_under_streaming() {
    for name in [
        "qft_16",
        "qft_24_8",
        "random_12_200",
        "random_16_400_7",
        "shor_8",
        "shor_16_2",
    ] {
        check_workload(&ft_by_name(name), name);
    }
}

#[test]
fn lazy_shor_stream_estimates_like_the_materialized_circuit() {
    // The api session's exact wiring: a generator-backed FnSource over the
    // lazy shor stream versus lower_to_ft of the materialized skeleton.
    let stream = stream_by_name("shor_12_2").expect("valid shor name");
    let source = FnSource::new(stream.num_qubits(), move || stream.ops());
    let ft = ft_by_name("shor_12_2");
    assert_eq!(source.num_qubits(), ft.num_qubits());

    let est = estimator();
    let streamed = est.estimate_stream(&source).unwrap();
    let materialized = est.estimate(&Qodg::from_ft_circuit(&ft)).unwrap();
    assert_estimates_identical(&streamed, &materialized, "shor_12_2");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunking must never change a byte of the profile or the estimate,
    /// whatever the stream looks like.
    #[test]
    fn chunking_never_changes_profile_or_estimate(
        qubits in 3u32..14,
        gates in 0u64..240,
        seed in 0u64..1_000_000,
    ) {
        let circuit = leqa_workloads::random_circuit(leqa_workloads::RandomCircuitConfig {
            qubits,
            gates,
            seed,
            ..Default::default()
        });
        let ft = lower_to_ft(&circuit).expect("random circuits lower");
        let qodg = Qodg::from_ft_circuit(&ft);
        let materialized_profile = ProfileData::new(&qodg);
        let est = estimator();
        let materialized = est.estimate(&qodg).expect("fits");

        for chunk in CHUNK_SIZES {
            let mut builder =
                StreamingProfileBuilder::with_chunk_pairs(ft.num_qubits(), chunk);
            for op in GateSource::gates(&ft) {
                builder.push(op);
            }
            let profile = builder.finish().expect("well-formed");
            prop_assert!(
                profile == materialized_profile,
                "qubits={qubits} gates={gates} seed={seed} chunk={chunk}"
            );
            let streamed = est
                .estimate_stream_with_data(ft.num_qubits(), &profile, GateSource::gates(&ft))
                .expect("well-formed");
            assert_estimates_identical(
                &streamed,
                &materialized,
                &format!("random qubits={qubits} gates={gates} seed={seed} chunk={chunk}"),
            );
        }
    }
}
