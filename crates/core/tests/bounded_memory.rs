//! Bounded-memory regression: the streaming estimator's peak live heap
//! must stay under a fixed budget at cryptographic scale — the property
//! that justifies the streaming path's existence.
//!
//! The binary installs [`CountingAlloc`] as the global allocator, so the
//! numbers are *live requested bytes*, not RSS: deterministic across
//! machines and allocators. The `shor_1024` test (≈19.7 M lowered ops) is
//! `#[ignore]` by default — it streams tens of millions of gates twice —
//! with a `shor_64` smoke variant that runs everywhere and additionally
//! pins byte-identity against the materialized pipeline.

use leqa::meter::CountingAlloc;
use leqa::stream::FnSource;
use leqa::{Estimate, Estimator};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::{circuit_by_name, stream_by_name};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Streams `name` through the estimator on `dims`, returning the estimate
/// and the peak live bytes attributable to the call.
fn streamed_estimate_with_peak(name: &str, dims: FabricDims) -> (Estimate, usize) {
    let stream = stream_by_name(name).unwrap_or_else(|| panic!("streamable workload {name}"));
    let source = FnSource::new(stream.num_qubits(), move || stream.ops());
    let estimator = Estimator::new(dims, PhysicalParams::dac13());

    let baseline = ALLOC.live_bytes();
    ALLOC.reset_peak();
    let estimate = estimator
        .estimate_stream(&source)
        .expect("stream is well-formed and fits the fabric");
    let peak = ALLOC.peak_bytes().saturating_sub(baseline);
    (estimate, peak)
}

/// `shor_64` (≈77 k ops, 1162 lowered qubits): small enough to also run
/// the materialized pipeline and require byte-identity, with the memory
/// budget asserted at smoke scale.
#[test]
fn shor_64_smoke_stays_in_budget_and_matches_materialized() {
    // 8 MiB: dominated by the accumulator's fixed 64 Ki-pair chunk buffer
    // and the (tiny) IIG; materializing the same workload costs ~10× more
    // before the profile pass even starts.
    const SMOKE_BUDGET: usize = 8 << 20;

    let (streamed, peak) = streamed_estimate_with_peak("shor_64", FabricDims::dac13());
    println!("shor_64 streaming peak: {} bytes", peak);
    assert!(
        peak < SMOKE_BUDGET,
        "streaming shor_64 peaked at {peak} bytes (budget {SMOKE_BUDGET})"
    );

    let ft = lower_to_ft(&circuit_by_name("shor_64").unwrap()).unwrap();
    let materialized = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13())
        .estimate(&Qodg::from_ft_circuit(&ft))
        .unwrap();
    assert_eq!(streamed.latency, materialized.latency);
    assert_eq!(streamed.l_cnot_avg, materialized.l_cnot_avg);
    assert_eq!(streamed.d_uncong, materialized.d_uncong);
    assert_eq!(streamed.esq, materialized.esq);
    assert_eq!(
        streamed.critical.cnot_count,
        materialized.critical.cnot_count
    );
    assert_eq!(
        streamed.critical.one_qubit_counts,
        materialized.critical.one_qubit_counts
    );
}

/// The acceptance bar: `shor_1024` (19,660,800 lowered ops on 264,322
/// qubits) streams to an estimate in < 1/10 of what materializing it
/// *provably* needs. `#[ignore]` by default: run with
/// `cargo test -p leqa --test bounded_memory --release -- --ignored`.
#[test]
#[ignore = "streams ~20M gates twice; run explicitly (use --release)"]
fn shor_1024_streams_under_a_tenth_of_the_materialized_floor() {
    const BUDGET: usize = 64 << 20; // 64 MiB

    let stream = stream_by_name("shor_1024").unwrap();
    let ops = stream.ft_op_count();
    assert!(ops > 10_000_000, "acceptance demands cryptographic scale");

    // An *analytic lower bound* on the materialized pipeline's live heap,
    // from the closed-form op count. During `estimate(&qodg)` the QODG
    // holds, per op node: the node itself, a CSR offset, and at least one
    // predecessor edge (`Qodg::from_gates` pushes one for the first
    // operand wire unconditionally); the critical-path pass adds a
    // distance and an argmax slot per node. All five arrays are live
    // simultaneously. This ignores the op list, the IIG pair buffer and
    // every second predecessor edge, so the real peak is higher still.
    let materialized_floor = ops as usize
        * (std::mem::size_of::<leqa_circuit::QodgNode>()
            + std::mem::size_of::<u32>()
            + std::mem::size_of::<leqa_circuit::NodeId>()
            + std::mem::size_of::<leqa_fabric::Micros>()
            + std::mem::size_of::<Option<leqa_circuit::NodeId>>());
    assert!(
        BUDGET * 10 < materialized_floor,
        "budget {BUDGET} is not a 10x improvement over the {materialized_floor}-byte floor"
    );

    // 520 x 520 = 270,400 ULBs: the smallest round fabric that fits the
    // 264,322 lowered qubits.
    let dims = FabricDims::new(520, 520).unwrap();
    let (estimate, peak) = streamed_estimate_with_peak("shor_1024", dims);
    println!(
        "shor_1024: {} ops, peak {} bytes ({:.1} MiB), floor {} bytes",
        ops,
        peak,
        peak as f64 / (1 << 20) as f64,
        materialized_floor
    );
    assert!(
        peak < BUDGET,
        "streaming shor_1024 peaked at {peak} bytes (budget {BUDGET})"
    );
    assert_eq!(estimate.qubit_count, 264_322);
    assert!(estimate.latency.as_f64() > 0.0);
    assert!(estimate.critical.cnot_count > 0);
}
