//! QECC co-design — the intro's motivating loop: "designers of quantum
//! error correction codes [can] investigate the effect of different error
//! correction codes on the latency of quantum programs".
//!
//! Compares the estimated latency of a benchmark under three gate-delay
//! sets standing in for different codes: the paper's one-level [[7,1,3]]
//! Steane numbers, a two-level concatenation (every delay roughly an order
//! of magnitude slower, movement included), and a hypothetical
//! magic-state-assisted code whose T gates cost the same as Cliffords.
//!
//! Each code is one API session built with its parameter set; the
//! gate-delay table itself comes from the engine-level
//! [`leqa_fabric::PhysicalParamsBuilder`] (delay-table overrides are
//! deliberately not on the wire — see API.md).
//!
//! ```sh
//! cargo run --release --example qecc_comparison
//! ```

use leqa_repro::api::{EstimateRequest, ProgramSpec, Session};
use leqa_repro::leqa_fabric::{GateDelays, Micros, OneQubitKind, PhysicalParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steane1 = PhysicalParams::dac13();

    // Two-level Steane: each logical op expands ~10x in physical depth and
    // logical qubits move as larger blocks.
    let steane2 = steane1
        .to_builder()
        .gate_delays(GateDelays::from_fn(
            |kind| steane1.gate_delays().one_qubit(kind) * 10.0,
            steane1.gate_delays().cnot() * 10.0,
        ))
        .t_move(steane1.t_move() * 10.0)
        .build()?;

    // Magic-state-assisted code: T costs no more than the Paulis because
    // the expensive part is distilled offline.
    let magic = steane1
        .to_builder()
        .gate_delays(GateDelays::from_fn(
            |kind| match kind {
                OneQubitKind::T | OneQubitKind::Tdg => Micros::new(5240.0),
                other => steane1.gate_delays().one_qubit(other),
            },
            steane1.gate_delays().cnot(),
        ))
        .build()?;

    println!("QECC comparison on gf2^16mult (T-heavy Toffoli networks)");
    println!("{:<28} {:>14}", "code", "latency (s)");
    for (label, params) in [
        ("[[7,1,3]] Steane, 1 level", steane1.clone()),
        ("[[7,1,3]] Steane, 2 levels", steane2),
        ("magic-state (cheap T)", magic),
    ] {
        let session = Session::builder().params(params).build()?;
        let response = session.estimate(&EstimateRequest::new(ProgramSpec::bench("gf2^16mult")))?;
        println!("{:<28} {:>14.4}", label, response.latency_us / 1e6);
    }

    println!(
        "\nthe cheap-T code wins because the Shende–Markov Toffoli network \
         puts 7 T/T† gates on every Toffoli's path; LEQA prices that in \
         milliseconds instead of a full mapping run."
    );
    Ok(())
}
