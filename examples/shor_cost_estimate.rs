//! Shor-style cost estimation — the §4.2 story, run instead of argued:
//! LEQA prices a (skeletonized) Shor inner loop in milliseconds where
//! detailed mapping already takes noticeable time, and picks the
//! latency-optimal fabric while at it — all through the API session.
//!
//! ```sh
//! cargo run --release --example shor_cost_estimate
//! ```

use std::time::Instant;

use leqa_repro::api::{EstimateRequest, MapRequest, ProgramSpec, Session, SweepRequest};
use leqa_repro::leqa_circuit::parser;
use leqa_repro::leqa_workloads::shor::shor_skeleton;

/// Generated circuits enter the API as inline `.qc` text (the canonical
/// form the session's content-addressed cache hashes).
fn spec(bits: u32, rounds: u32) -> ProgramSpec {
    ProgramSpec::source(parser::write(&shor_skeleton(bits, rounds)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().build()?;

    println!(
        "{:>5} {:>7} {:>9} {:>12} {:>12} {:>9}",
        "bits", "rounds", "ops", "LEQA (s)", "QSPR (s)", "speedup"
    );
    for (bits, rounds) in [(8u32, 4u32), (16, 8), (24, 12), (32, 16)] {
        let program = spec(bits, rounds);

        let t0 = Instant::now();
        let estimate = session.estimate(&EstimateRequest::new(program.clone()))?;
        let t_leqa = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mapped = session.map(&MapRequest::new(program))?;
        let t_qspr = t0.elapsed().as_secs_f64();

        println!(
            "{bits:>5} {rounds:>7} {:>9} {:>12.5} {:>12.5} {:>9.1}",
            estimate.program.ops,
            t_leqa,
            t_qspr,
            t_qspr / t_leqa
        );
        let err = 100.0 * (estimate.latency_us - mapped.latency_us).abs() / mapped.latency_us;
        println!(
            "      estimated {:.2} s vs mapped {:.2} s ({err:.1}% error)",
            estimate.latency_us / 1e6,
            mapped.latency_us / 1e6
        );
    }

    // The co-design question LEQA makes cheap: what fabric should a
    // Shor-32 inner loop run on? (The sweep endpoint amortises the
    // program profile across every candidate.)
    let t0 = Instant::now();
    let sweep = session.sweep(&SweepRequest::new(
        spec(32, 16),
        [12u32, 16, 20, 30, 40, 60, 90],
    ))?;
    let side = sweep.optimal_side.expect("some candidate fits");
    let latency = sweep
        .points
        .iter()
        .find(|p| p.side == side)
        .and_then(|p| p.latency_us)
        .expect("the optimal side has an estimate");
    println!(
        "\noptimal fabric for shor32x16 ({} qubits): {side}x{side} at {:.2} s \
         (swept {} fabrics in {:.0} ms)",
        sweep.program.qubits,
        latency / 1e6,
        sweep.points.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
