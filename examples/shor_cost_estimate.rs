//! Shor-style cost estimation — the §4.2 story, run instead of argued:
//! LEQA prices a (skeletonized) Shor inner loop in milliseconds where
//! detailed mapping already takes noticeable time, and picks the
//! latency-optimal fabric while at it.
//!
//! ```sh
//! cargo run --release --example shor_cost_estimate
//! ```

use std::time::Instant;

use leqa::sweep::optimal_square_fabric;
use leqa::{Estimator, EstimatorOptions};
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::shor::shor_skeleton;
use qspr::Mapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PhysicalParams::dac13();

    println!(
        "{:>5} {:>7} {:>9} {:>12} {:>12} {:>9}",
        "bits", "rounds", "ops", "LEQA (s)", "QSPR (s)", "speedup"
    );
    for (bits, rounds) in [(8u32, 4u32), (16, 8), (24, 12), (32, 16)] {
        let circuit = shor_skeleton(bits, rounds);
        let ft = lower_to_ft(&circuit)?;
        let qodg = Qodg::from_ft_circuit(&ft);

        let t0 = Instant::now();
        let estimate = Estimator::new(FabricDims::dac13(), params.clone()).estimate(&qodg)?;
        let t_leqa = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let actual = Mapper::new(FabricDims::dac13(), params.clone()).map(&qodg)?;
        let t_qspr = t0.elapsed().as_secs_f64();

        println!(
            "{bits:>5} {rounds:>7} {:>9} {:>12.5} {:>12.5} {:>9.1}",
            qodg.op_count(),
            t_leqa,
            t_qspr,
            t_qspr / t_leqa
        );
        let err = 100.0 * (estimate.latency.as_secs() - actual.latency.as_secs()).abs()
            / actual.latency.as_secs();
        println!(
            "      estimated {:.2} s vs mapped {:.2} s ({err:.1}% error)",
            estimate.latency.as_secs(),
            actual.latency.as_secs()
        );
    }

    // The co-design question LEQA makes cheap: what fabric should a
    // Shor-32 inner loop run on?
    let circuit = shor_skeleton(32, 16);
    let ft = lower_to_ft(&circuit)?;
    let qodg = Qodg::from_ft_circuit(&ft);
    let t0 = Instant::now();
    let best = optimal_square_fabric(
        &qodg,
        &params,
        EstimatorOptions::default(),
        [12, 16, 20, 30, 40, 60, 90],
    )
    .expect("some candidate fits");
    println!(
        "\noptimal fabric for shor32x16 ({} qubits): {}x{} at {:.2} s \
         (swept 7 fabrics in {:.0} ms)",
        qodg.num_qubits(),
        best.0.width(),
        best.0.height(),
        best.1.latency.as_secs(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
