//! Congestion heatmap — the Fig. 3 picture, measured instead of drawn:
//! where presence zones overlap, routing channels carry more traffic.
//!
//! Maps a benchmark with the detailed mapper and renders an ASCII heatmap
//! of per-ULB channel traffic (each cell aggregates its adjacent
//! channels' traversal counts), alongside LEQA's model view of the same
//! phenomenon (the congested fraction of `E[S_q]` mass).
//!
//! The heatmap needs per-channel traversal counts, which are deliberately
//! not on the API surface — this is the kind of research probe API.md
//! reserves the engine crates for. The LEQA side goes through the
//! session like application code should.
//!
//! ```sh
//! cargo run --release --example congestion_heatmap
//! ```

use std::sync::Arc;

use leqa_repro::api::{EstimateRequest, ProgramSpec, Session};
use leqa_repro::leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_repro::leqa_fabric::{Channel, FabricDims, FabricMap, PhysicalParams, Ulb};
use leqa_repro::leqa_workloads::Benchmark;
use leqa_repro::qspr::Mapper;

const SHADES: [char; 7] = [' ', '.', ':', '+', '*', '#', '@'];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Benchmark::by_name("hwb50ps").expect("suite benchmark");
    let ft = lower_to_ft(&bench.circuit())?;
    let qodg = Qodg::from_ft_circuit(&ft);
    let dims = FabricDims::new(30, 30)?; // small fabric → visible congestion
    let params = PhysicalParams::dac13();

    let result = Mapper::new(dims, params.clone()).map(&qodg)?;

    // Aggregate channel load onto ULB cells.
    let mut cell_load = vec![0u64; dims.area() as usize];
    for ulb in dims.ulbs() {
        for n in dims.neighbors(ulb) {
            let id = Channel::between(ulb, n).expect("adjacent").id(dims);
            cell_load[dims.index_of(ulb)] += result.channel_load[id.0];
        }
    }
    let max = cell_load.iter().copied().max().unwrap_or(1).max(1);

    println!(
        "{} on a {}x{} fabric — channel-traffic heatmap (max {} traversals/cell)",
        bench.name,
        dims.width(),
        dims.height(),
        max
    );
    for y in 0..dims.height() {
        let row: String = (0..dims.width())
            .map(|x| {
                let load = cell_load[dims.index_of(Ulb::new(x, y))];
                let shade = (load * (SHADES.len() as u64 - 1) + max / 2) / max;
                SHADES[shade as usize]
            })
            .collect();
        println!("  |{row}|");
    }

    println!(
        "\nmapper: total congestion wait {:.3} s, busiest channel {} traversals",
        result.stats.congestion_wait.as_secs(),
        result.stats.max_channel_load
    );

    // LEQA's view, through the session: how much E[S_q] mass sits above
    // the channel capacity on the same 30x30 fabric.
    let session = Session::builder().fabric(dims).build()?;
    let estimate = session.estimate(&EstimateRequest::new(ProgramSpec::bench(bench.name)))?;
    let total: f64 = estimate.esq.iter().sum();
    let congested: f64 = estimate
        .esq
        .iter()
        .enumerate()
        .filter(|(k, _)| (k + 1) as u32 > params.channel_capacity())
        .map(|(_, e)| e)
        .sum();
    println!(
        "LEQA model: {:.1}% of covered area carries more than N_c = {} zones \
         (drives L_CNOT = {:.0} µs)",
        100.0 * congested / total,
        params.channel_capacity(),
        estimate.l_cnot_avg_us
    );

    // The same picture on a defective fabric: 8% of cells and channels
    // dead (seeded draw), traffic squeezed around the holes. Dead cells
    // render as `X`; the live shades use the same scale as above. Some
    // draws sever a needed transfer — those surface as the typed
    // `Unroutable` error, and we simply try the next seed (exactly what
    // the Monte Carlo experiment mode automates at scale).
    let (seed, map, defective) = (42..62)
        .find_map(|seed| {
            let map = FabricMap::with_random_defects(dims, 0.08, 0.08, seed).ok()?;
            match Mapper::new(dims, params.clone())
                .with_fabric_map(Arc::new(map.clone()))
                .map(&qodg)
            {
                Ok(result) => Some((seed, map, result)),
                Err(leqa_repro::qspr::MapError::Unroutable { from, to }) => {
                    println!("\nseed {seed}: defects sever {from:?} → {to:?}; redrawing");
                    None
                }
                Err(_) => None,
            }
        })
        .expect("some draw at 8% density routes");
    let mut cell_load = vec![0u64; dims.area() as usize];
    for ulb in dims.ulbs() {
        for n in dims.neighbors(ulb) {
            let id = Channel::between(ulb, n).expect("adjacent").id(dims);
            cell_load[dims.index_of(ulb)] += defective.channel_load[id.0];
        }
    }
    let def_max = cell_load.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "\nsame workload, {} dead cells / {} dead channels (seed {seed}) — defects reshape the \
         traffic (max {} traversals/cell)",
        map.dead_cells(),
        map.dead_channels(),
        def_max
    );
    for y in 0..dims.height() {
        let row: String = (0..dims.width())
            .map(|x| {
                let ulb = Ulb::new(x, y);
                if !map.cell_enabled(ulb) {
                    return 'X';
                }
                let load = cell_load[dims.index_of(ulb)];
                let shade = (load * (SHADES.len() as u64 - 1) + def_max / 2) / def_max;
                SHADES[shade as usize]
            })
            .collect();
        println!("  |{row}|");
    }
    println!(
        "defective mapper: latency {:.3} s vs pristine {:.3} s, congestion wait {:.3} s vs {:.3} s",
        defective.latency.as_secs(),
        result.latency.as_secs(),
        defective.stats.congestion_wait.as_secs(),
        result.stats.congestion_wait.as_secs(),
    );
    Ok(())
}
