//! Quickstart: estimate a circuit's latency through the service façade.
//!
//! The [`leqa_repro::api::Session`] is the supported application entry
//! point: it owns the fabric, the physical parameters and the program
//! cache, and every endpoint takes a typed request (see API.md).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use leqa_repro::api::{EstimateRequest, ProgramSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Circuits can be generated (see WORKLOADS.md), read from disk, or
    // written inline in the shared `.qc` text format.
    let source = "\
.name demo
.qubits 5
toffoli 0 1 2
cnot 2 3
toffoli 1 2 4
cnot 4 0
h 3
t 3
";

    // One session: the paper's 60x60 ion-trap fabric, Table 1 parameters.
    let session = Session::builder().build()?;
    let response = session.estimate(&EstimateRequest::new(ProgramSpec::source(source)))?;

    println!(
        "circuit `{}`: {} qubits, {} FT ops",
        response.program.label, response.program.qubits, response.program.ops
    );
    println!(
        "estimated latency:       {:.4} s",
        response.latency_us / 1e6
    );
    println!("  L_CNOT^avg:            {:.0} µs", response.l_cnot_avg_us);
    println!("  d_uncong:              {:.0} µs", response.d_uncong_us);
    println!(
        "  avg presence zone B:   {:.2} ULBs",
        response.avg_zone_area
    );
    println!(
        "  critical path:         {} CNOTs + {} one-qubit ops",
        response.critical_cnots, response.critical_one_qubit
    );

    // The same program again: served from the session's profile cache.
    let again = session.estimate(&EstimateRequest::new(ProgramSpec::source(source)))?;
    assert!(again.profile_cached);
    assert_eq!(again.latency_us, response.latency_us);
    println!("second request: profile cache hit, identical result");

    // Every response speaks versioned JSON (`--format json` in the CLI).
    println!("\nwire form:\n{}", response.to_json().encode());
    Ok(())
}
