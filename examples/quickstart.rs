//! Quickstart: build a circuit, lower it, and estimate its latency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, parser, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Circuits can be built programmatically (see the other examples) or
    // parsed from the shared text format.
    let source = "\
.name demo
.qubits 5
toffoli 0 1 2
cnot 2 3
toffoli 1 2 4
cnot 4 0
h 3
t 3
";
    let circuit = parser::parse(source)?;

    // Lower to fault-tolerant operations ({H, T, T†, CNOT, ...}) and build
    // the quantum operation dependency graph.
    let ft = lower_to_ft(&circuit)?;
    let qodg = Qodg::from_ft_circuit(&ft);
    println!(
        "circuit `{}`: {} qubits, {} FT ops, {} QODG edges",
        circuit.name().unwrap_or("?"),
        ft.num_qubits(),
        ft.ops().len(),
        qodg.edge_count()
    );

    // Estimate on the paper's 60x60 ion-trap fabric (Table 1 parameters).
    let estimator = Estimator::new(FabricDims::dac13(), PhysicalParams::dac13());
    let estimate = estimator.estimate(&qodg)?;

    println!(
        "estimated latency:       {:.4} s",
        estimate.latency.as_secs()
    );
    println!(
        "  L_CNOT^avg:            {:.0} µs",
        estimate.l_cnot_avg.as_f64()
    );
    println!(
        "  L_g^avg:               {:.0} µs",
        estimate.l_one_qubit_avg.as_f64()
    );
    println!(
        "  d_uncong:              {:.0} µs",
        estimate.d_uncong.as_f64()
    );
    println!(
        "  avg presence zone B:   {:.2} ULBs",
        estimate.avg_zone_area
    );
    println!(
        "  critical path:         {} CNOTs + {} one-qubit ops",
        estimate.critical.cnot_count,
        estimate.critical.one_qubit_counts.iter().sum::<u64>()
    );
    Ok(())
}
