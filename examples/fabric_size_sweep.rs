//! Fabric-size exploration — the use case Algorithm 1's inputs call out:
//! "Size of the fabric ... can be changed to find the optimal size for the
//! fabric which results in the minimum delay."
//!
//! Sweeps square fabrics and prints the estimated latency of a benchmark
//! on each, showing the congestion/area trade-off: a fabric barely larger
//! than the qubit count suffers congested channels; past a point, extra
//! area buys nothing.
//!
//! ```sh
//! cargo run --release --example fabric_size_sweep
//! ```

use leqa::sweep::sweep_fabrics;
use leqa::EstimatorOptions;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Benchmark::by_name("hwb50ps").expect("suite benchmark");
    let ft = lower_to_ft(&bench.circuit())?;
    let qodg = Qodg::from_ft_circuit(&ft);
    let params = PhysicalParams::dac13();

    println!(
        "fabric-size sweep for {} ({} logical qubits)",
        bench.name,
        qodg.num_qubits()
    );
    println!(
        "{:>9} {:>8} {:>14} {:>14}",
        "fabric", "ULBs", "L_CNOT (µs)", "latency (s)"
    );

    // One sweep call: the program profile (IIG, zone statistics,
    // uncongested-delay terms) is built once and shared by every candidate.
    let sides = [20u32, 25, 30, 40, 50, 60, 80, 100, 140];
    let candidates = sides
        .iter()
        .map(|&s| FabricDims::new(s, s))
        .collect::<Result<Vec<_>, _>>()?;

    let mut best: Option<(u32, f64)> = None;
    for point in sweep_fabrics(&qodg, &params, EstimatorOptions::default(), candidates) {
        let side = point.dims.width();
        let Some(estimate) = point.estimate else {
            println!(
                "{side:>6}x{side:<2} {:>8} (too small for the program)",
                point.dims.area()
            );
            continue;
        };
        let latency = estimate.latency.as_secs();
        println!(
            "{side:>6}x{side:<2} {:>8} {:>14.0} {:>14.4}",
            point.dims.area(),
            estimate.l_cnot_avg.as_f64(),
            latency
        );
        if best.is_none_or(|(_, l)| latency < l) {
            best = Some((side, latency));
        }
    }

    if let Some((side, latency)) = best {
        println!("\nminimum estimated delay: {latency:.4} s at {side}x{side}");
    }
    Ok(())
}
