//! Fabric-size exploration — the use case Algorithm 1's inputs call out:
//! "Size of the fabric ... can be changed to find the optimal size for the
//! fabric which results in the minimum delay."
//!
//! Sweeps square fabrics through the API session (the amortised sweep
//! engine: the program profile is built once and shared by every
//! candidate; per-size output is bit-identical to independent estimates)
//! and prints the congestion/area trade-off: a fabric barely larger than
//! the qubit count suffers congested channels; past a point, extra area
//! buys nothing.
//!
//! For multi-axis studies (several workloads, parameter variants, router
//! variants) see `leqa experiment --spec examples/experiment_small.json`.
//!
//! ```sh
//! cargo run --release --example fabric_size_sweep
//! ```

use leqa_repro::api::{ProgramSpec, Session, SweepRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().build()?;
    let sides = [20u32, 25, 30, 40, 50, 60, 80, 100, 140];
    let response = session.sweep(&SweepRequest::new(ProgramSpec::bench("hwb50ps"), sides))?;

    println!(
        "fabric-size sweep for {} ({} logical qubits)",
        response.program.label, response.program.qubits
    );
    println!(
        "{:>9} {:>14} {:>14}",
        "fabric", "L_CNOT (µs)", "latency (s)"
    );

    for point in &response.points {
        let side = point.side;
        match (point.l_cnot_avg_us, point.latency_us) {
            (Some(l_cnot), Some(latency_us)) => {
                println!(
                    "{side:>6}x{side:<2} {l_cnot:>14.0} {:>14.4}",
                    latency_us / 1e6
                );
            }
            _ => println!("{side:>6}x{side:<2} (too small for the program)"),
        }
    }

    if let Some(side) = response.optimal_side {
        let latency = response
            .points
            .iter()
            .find(|p| p.side == side)
            .and_then(|p| p.latency_us)
            .expect("the optimal side has an estimate");
        println!(
            "\nminimum estimated delay: {:.4} s at {side}x{side}",
            latency / 1e6
        );
    }
    Ok(())
}
