//! Estimator vs detailed mapper on the same program: the Table 2
//! experiment in miniature, with the mapper's movement statistics shown
//! next to LEQA's model quantities — all through the API session.
//!
//! ```sh
//! cargo run --release --example estimator_vs_mapper
//! ```

use leqa_repro::api::{EstimateRequest, MapRequest, ProgramSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().build()?; // 60x60, Table 1 params
    let program = ProgramSpec::bench("ham15");

    // One detailed mapping (the expensive part) and one estimate; the
    // program is lowered once and the estimate hits the profile cache.
    // (`session.compare` bundles both but keeps the mapper's movement
    // statistics to itself — this example wants them printed.)
    let mapped = session.map(&MapRequest::new(program.clone()))?;
    let estimate = session.estimate(&EstimateRequest::new(program))?;

    println!(
        "benchmark: {} ({} qubits, {} ops)",
        mapped.program.label, mapped.program.qubits, mapped.program.ops
    );
    println!();
    println!("QSPR (detailed mapping)");
    println!("  actual latency:        {:.4} s", mapped.latency_us / 1e6);
    println!("  CNOTs routed:          {}", mapped.cnot_ops);
    println!(
        "  avg CNOT distance:     {:.2} hops",
        mapped.avg_cnot_distance
    );
    println!(
        "  busiest channel:       {} traversals",
        mapped.max_channel_load
    );
    println!(
        "  congestion wait:       {:.4} s (summed over qubits)",
        mapped.congestion_wait_us / 1e6
    );
    println!();
    println!("LEQA (procedural estimate)");
    println!(
        "  estimated latency:     {:.4} s",
        estimate.latency_us / 1e6
    );
    println!("  L_CNOT^avg:            {:.0} µs", estimate.l_cnot_avg_us);
    println!("  d_uncong:              {:.0} µs", estimate.d_uncong_us);
    println!(
        "  avg presence zone B:   {:.2} ULBs",
        estimate.avg_zone_area
    );
    println!();
    if mapped.latency_us > 0.0 {
        let err = 100.0 * (estimate.latency_us - mapped.latency_us).abs() / mapped.latency_us;
        println!("absolute error: {err:.2}% (paper's suite average: 2.11%)");
    }
    Ok(())
}
