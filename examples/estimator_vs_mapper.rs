//! Estimator vs detailed mapper on the same program: the Table 2
//! experiment in miniature, with the mapper's movement statistics shown
//! next to LEQA's model quantities.
//!
//! ```sh
//! cargo run --release --example estimator_vs_mapper
//! ```

use leqa::Estimator;
use leqa_circuit::{decompose::lower_to_ft, Qodg};
use leqa_fabric::{FabricDims, PhysicalParams};
use leqa_workloads::Benchmark;
use qspr::Mapper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = Benchmark::by_name("ham15").expect("suite benchmark");
    let ft = lower_to_ft(&bench.circuit())?;
    let qodg = Qodg::from_ft_circuit(&ft);
    let dims = FabricDims::dac13();
    let params = PhysicalParams::dac13();

    let actual = Mapper::new(dims, params.clone()).map(&qodg)?;
    let estimate = Estimator::new(dims, params).estimate(&qodg)?;

    let err = 100.0 * (estimate.latency.as_secs() - actual.latency.as_secs()).abs()
        / actual.latency.as_secs();

    println!(
        "benchmark: {} ({} qubits, {} ops)",
        bench.name,
        qodg.num_qubits(),
        qodg.op_count()
    );
    println!();
    println!("QSPR (detailed mapping)");
    println!("  actual latency:        {:.4} s", actual.latency.as_secs());
    println!("  CNOTs routed:          {}", actual.stats.cnot_ops);
    println!(
        "  avg CNOT distance:     {:.2} hops",
        actual.stats.avg_cnot_distance()
    );
    println!(
        "  channel traversals:    {}",
        actual.stats.channel_traversals
    );
    println!(
        "  congestion wait:       {:.4} s (summed over qubits)",
        actual.stats.congestion_wait.as_secs()
    );
    println!();
    println!("LEQA (procedural estimate)");
    println!(
        "  estimated latency:     {:.4} s",
        estimate.latency.as_secs()
    );
    println!(
        "  L_CNOT^avg:            {:.0} µs",
        estimate.l_cnot_avg.as_f64()
    );
    println!(
        "  d_uncong:              {:.0} µs",
        estimate.d_uncong.as_f64()
    );
    println!(
        "  avg presence zone B:   {:.2} ULBs",
        estimate.avg_zone_area
    );
    println!();
    println!("absolute error: {err:.2}% (paper's suite average: 2.11%)");
    Ok(())
}
